//! The delay-and-sum kernel (Eq. 1) over any delay engine.
//!
//! The volume path mirrors the paper's architecture: delays are consumed
//! as per-nappe slabs ([`DelayEngine::fill_nappe`]) rather than per-voxel
//! queries, and the steering fan is split into [`NappeSchedule`] tiles
//! beamformed in parallel — each worker owns one tile's slab and walks
//! the nappes in depth order, exactly like a Fig. 4 block bound to its
//! correction registers. The output volume is bit-identical to the scalar
//! per-voxel path, which is kept as the reference implementation (and as
//! the executed path for scanline-by-scanline traversal).

use crate::{Apodization, BeamformedVolume};
use usbf_core::{DelayEngine, NappeDelays, NappeSchedule, Tile};
use usbf_geometry::scan::ScanOrder;
use usbf_geometry::{ElementIndex, SystemSpec, VoxelIndex};
use usbf_sim::RfFrame;

/// The schedule the parallel volume paths run on: fitted to the pool
/// that will execute it (~4 tiles per worker for claim balancing), not
/// to raw core count — the two differ when `USBF_POOL_THREADS` resizes
/// the global pool.
pub(crate) fn pool_fitted_schedule(
    spec: &SystemSpec,
    pool: &usbf_par::ThreadPool,
) -> NappeSchedule {
    NappeSchedule::fitted(spec, pool.threads().max(1) * 4)
}

/// Scatters one tile's beamformed values (in
/// `[scanline-within-tile][depth]` order) into the output volume — the
/// single copy of the tile→volume layout mapping, shared by the cold
/// tiled path, [`VolumeLoop`](crate::VolumeLoop) and
/// [`FramePipeline`](crate::FramePipeline) so all three stay
/// bit-identical by construction.
pub(crate) fn scatter_tile(out: &mut BeamformedVolume, tile: Tile, values: &[f64], n_depth: usize) {
    for (slot, it, ip) in tile.iter_scanlines() {
        let column = &values[slot * n_depth..(slot + 1) * n_depth];
        for (id, &v) in column.iter().enumerate() {
            out.set(VoxelIndex::new(it, ip, id), v);
        }
    }
}

/// Warm per-tile state: one task's delay slab and output staging
/// buffer, allocated once at construction and refilled every frame.
/// One definition shared by [`VolumeLoop`](crate::VolumeLoop) and
/// [`FramePipeline`](crate::FramePipeline), so the warm-state shape (and
/// with it the bit-identical-to-serial invariant) cannot drift between
/// the two runtimes.
pub(crate) struct TileState {
    pub(crate) slab: NappeDelays,
    pub(crate) values: Vec<f64>,
}

/// Builds the warm state for every tile of a schedule: the only place
/// the slab/values sizing lives.
pub(crate) fn warm_tile_states(spec: &SystemSpec, tiles: &[Tile]) -> Vec<TileState> {
    let n_depth = spec.volume_grid.n_depth();
    tiles
        .iter()
        .map(|&tile| TileState {
            slab: NappeDelays::for_tile(spec, tile),
            values: vec![0.0; tile.scanlines() * n_depth],
        })
        .collect()
}

/// Scatters every tile's staged values into the output volume, in tile
/// order — the deterministic sequential merge both runtimes end a frame
/// with.
pub(crate) fn scatter_tiles(
    out: &mut BeamformedVolume,
    tiles: &[Tile],
    states: &[TileState],
    n_depth: usize,
) {
    for (tile, state) in tiles.iter().zip(states) {
        scatter_tile(out, *tile, &state.values, n_depth);
    }
}

/// How echo samples are fetched at the computed delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interpolation {
    /// Nearest-sample fetch via the engine's integer index — the paper's
    /// datapath (delays "are used as an index into an echo buffer").
    #[default]
    Nearest,
    /// Linear interpolation at the fractional delay (extension; quantifies
    /// how much of the error budget comes from index rounding).
    Linear,
}

/// A delay-and-sum beamformer bound to a system spec.
///
/// The engine is passed per call, so one beamformer can compare multiple
/// delay architectures on identical data.
#[derive(Debug, Clone)]
pub struct Beamformer {
    spec: SystemSpec,
    apodization: Apodization,
    interpolation: Interpolation,
    order: ScanOrder,
}

impl Beamformer {
    /// Creates a beamformer with Hann apodization, nearest-index fetch and
    /// nappe-by-nappe traversal (the paper's preferred order).
    #[must_use]
    pub fn new(spec: &SystemSpec) -> Self {
        Beamformer {
            spec: spec.clone(),
            apodization: Apodization::default(),
            interpolation: Interpolation::default(),
            order: ScanOrder::NappeByNappe,
        }
    }

    /// Sets the apodization window.
    #[must_use = "with_apodization returns the configured beamformer; dropping it discards the window"]
    pub fn with_apodization(mut self, apodization: Apodization) -> Self {
        self.apodization = apodization;
        self
    }

    /// Sets the sample-fetch interpolation.
    #[must_use = "with_interpolation returns the configured beamformer; dropping it discards the mode"]
    pub fn with_interpolation(mut self, interpolation: Interpolation) -> Self {
        self.interpolation = interpolation;
        self
    }

    /// Sets the traversal order (Algorithm 1 flavour).
    #[must_use = "with_order returns the configured beamformer; dropping it discards the order"]
    pub fn with_order(mut self, order: ScanOrder) -> Self {
        self.order = order;
        self
    }

    /// The configured scan order.
    pub fn order(&self) -> ScanOrder {
        self.order
    }

    /// The system spec this beamformer is bound to.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Apodization weights for every element, in linear element order —
    /// the `w` of Eq. 1, precomputed once per volume (or once per
    /// [`VolumeLoop`](crate::VolumeLoop) lifetime).
    pub fn element_weights(&self) -> Vec<f64> {
        self.apodization.weights(&self.spec.elements)
    }

    /// Beamforms a single focal point: `Σ_D w·e(D, tp)`.
    pub fn beamform_voxel(&self, engine: &dyn DelayEngine, rf: &RfFrame, vox: VoxelIndex) -> f64 {
        let mut acc = 0.0;
        for e in self.spec.elements.iter() {
            let w = self.apodization.weight(&self.spec.elements, e);
            if w == 0.0 {
                continue;
            }
            let v = match self.interpolation {
                Interpolation::Nearest => rf.sample(e, engine.delay_index(vox, e)),
                Interpolation::Linear => rf.sample_interp(e, engine.delay_samples(vox, e)),
            };
            acc += w * v;
        }
        acc
    }

    /// Beamforms the whole volume.
    ///
    /// Nappe-by-nappe order (the default) runs the batched pipeline:
    /// parallel over [`NappeSchedule`] tiles on the persistent
    /// `usbf_par` pool, one delay slab per (tile, nappe) via
    /// [`DelayEngine::fill_nappe`]. Scanline-by-scanline order keeps the
    /// scalar per-voxel walk as the reference path. Both produce
    /// bit-identical volumes. For repeated frames, prefer
    /// [`VolumeLoop`](crate::VolumeLoop), which reuses this path's slabs
    /// and buffers across calls.
    ///
    /// ```
    /// use usbf_beamform::Beamformer;
    /// use usbf_core::ExactEngine;
    /// use usbf_geometry::SystemSpec;
    /// use usbf_sim::RfFrame;
    ///
    /// let spec = SystemSpec::tiny();
    /// let rf = RfFrame::zeros(
    ///     spec.elements.nx(),
    ///     spec.elements.ny(),
    ///     spec.echo_buffer_len(),
    /// );
    /// let vol = Beamformer::new(&spec).beamform_volume(&ExactEngine::new(&spec), &rf);
    /// assert_eq!(vol.len(), spec.volume_grid.voxel_count());
    /// ```
    pub fn beamform_volume(&self, engine: &dyn DelayEngine, rf: &RfFrame) -> BeamformedVolume {
        match self.order {
            ScanOrder::NappeByNappe => {
                let schedule = pool_fitted_schedule(&self.spec, usbf_par::global());
                self.beamform_volume_tiled(engine, rf, &schedule)
            }
            ScanOrder::ScanlineByScanline => {
                let mut out = BeamformedVolume::zeros(&self.spec);
                for vox in self.order.iter(&self.spec.volume_grid) {
                    out.set(vox, self.beamform_voxel(engine, rf, vox));
                }
                out
            }
        }
    }

    /// Beamforms the whole volume with an explicit tile schedule: each
    /// tile is an independent unit of work (run in parallel, one worker
    /// slab each), and within a tile delays stream one nappe slab at a
    /// time in depth order.
    pub fn beamform_volume_tiled(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        schedule: &NappeSchedule,
    ) -> BeamformedVolume {
        let weights = self.apodization.weights(&self.spec.elements);
        let tiles = schedule.tiles();
        let per_tile: Vec<Vec<f64>> = usbf_par::par_map(&tiles, |_, tile| {
            self.beamform_tile(engine, rf, *tile, &weights)
        });
        let n_depth = self.spec.volume_grid.n_depth();
        let mut out = BeamformedVolume::zeros(&self.spec);
        for (tile, values) in tiles.iter().zip(per_tile) {
            scatter_tile(&mut out, *tile, &values, n_depth);
        }
        out
    }

    /// Beamforms one tile of the fan, nappe by nappe, returning values in
    /// `[scanline-within-tile][depth]` order.
    fn beamform_tile(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        tile: Tile,
        weights: &[f64],
    ) -> Vec<f64> {
        let mut slab = NappeDelays::for_tile(&self.spec, tile);
        let mut values = vec![0.0; tile.scanlines() * self.spec.volume_grid.n_depth()];
        self.beamform_tile_into(engine, rf, weights, &mut slab, &mut values);
        values
    }

    /// Beamforms one tile into caller-owned buffers: `slab` is the
    /// reusable per-worker delay slab (its tile selects the fan region)
    /// and `values` receives the result in
    /// `[scanline-within-tile][depth]` order. This is the allocation-free
    /// kernel [`VolumeLoop`](crate::VolumeLoop) drives every frame.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not exactly `tile.scanlines() × n_depth`
    /// long.
    pub fn beamform_tile_into(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        weights: &[f64],
        slab: &mut NappeDelays,
        values: &mut [f64],
    ) {
        let tile = slab.tile();
        let n_depth = self.spec.volume_grid.n_depth();
        let n_elements = self.spec.elements.count();
        let nx = self.spec.elements.nx();
        assert_eq!(
            values.len(),
            tile.scanlines() * n_depth,
            "values buffer must cover the tile"
        );
        for id in 0..n_depth {
            engine.fill_nappe(id, slab);
            for slot in 0..tile.scanlines() {
                let row = slab.row(slot);
                let mut acc = 0.0;
                for j in 0..n_elements {
                    let w = weights[j];
                    if w == 0.0 {
                        continue;
                    }
                    let e = ElementIndex::new(j % nx, j / nx);
                    let v = match self.interpolation {
                        // delay_index_from is the engine's own final
                        // rounding stage, so rounding telemetry (e.g.
                        // TABLESTEER's clamp counter) sees this path too.
                        Interpolation::Nearest => rf.sample(e, engine.delay_index_from(row[j])),
                        Interpolation::Linear => rf.sample_interp(e, row[j]),
                    };
                    acc += w * v;
                }
                values[slot * n_depth + id] = acc;
            }
        }
    }

    /// Beamforms one scanline (all depths along direction `(it, ip)`),
    /// returning the axial profile.
    pub fn beamform_scanline(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        it: usize,
        ip: usize,
    ) -> Vec<f64> {
        usbf_geometry::scan::scanline(&self.spec.volume_grid, it, ip)
            .map(|vox| self.beamform_voxel(engine, rf, vox))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usbf_core::{ExactEngine, TableSteerConfig, TableSteerEngine};
    use usbf_geometry::Vec3;
    use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

    fn setup(target: Vec3) -> (SystemSpec, RfFrame) {
        let spec = SystemSpec::tiny();
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        (spec, rf)
    }

    /// Put the target exactly on a voxel of the tiny grid.
    fn on_voxel_target(spec: &SystemSpec, vox: VoxelIndex) -> Vec3 {
        spec.volume_grid.position(vox)
    }

    #[test]
    fn point_target_peaks_at_its_voxel() {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(3, 4, 9);
        let target = on_voxel_target(&spec, vox);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let engine = ExactEngine::new(&spec);
        let bf = Beamformer::new(&spec);
        let vol = bf.beamform_volume(&engine, &rf);
        assert_eq!(vol.argmax(), vox, "energy must focus on the target voxel");
    }

    #[test]
    fn scan_orders_produce_identical_volumes() {
        // Fig. 1 / Algorithm 1: the two orders visit the same voxels.
        let (spec, rf) = setup(Vec3::new(0.005, -0.003, 0.06));
        let engine = ExactEngine::new(&spec);
        let nappe = Beamformer::new(&spec).with_order(ScanOrder::NappeByNappe);
        let scanline = Beamformer::new(&spec).with_order(ScanOrder::ScanlineByScanline);
        let a = nappe.beamform_volume(&engine, &rf);
        let b = scanline.beamform_volume(&engine, &rf);
        assert_eq!(a, b);
    }

    #[test]
    fn focused_sum_exceeds_defocused_sum() {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(4, 4, 8);
        let target = on_voxel_target(&spec, vox);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let engine = ExactEngine::new(&spec);
        let bf = Beamformer::new(&spec).with_apodization(Apodization::Rect);
        let at_focus = bf.beamform_voxel(&engine, &rf, vox).abs();
        let off_focus = bf
            .beamform_voxel(&engine, &rf, VoxelIndex::new(0, 0, 15))
            .abs();
        assert!(
            at_focus > 5.0 * off_focus,
            "focus {at_focus} vs off {off_focus}"
        );
    }

    #[test]
    fn tablesteer_volume_close_to_exact_volume() {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(4, 4, 8);
        let target = on_voxel_target(&spec, vox);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let bf = Beamformer::new(&spec);
        let exact = ExactEngine::new(&spec);
        let steer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let ve = bf.beamform_volume(&exact, &rf);
        let vs = bf.beamform_volume(&steer, &rf);
        // Peak lands on the same voxel and amplitude degrades mildly.
        assert_eq!(vs.argmax(), ve.argmax());
        let ratio = vs.max_abs() / ve.max_abs();
        assert!(ratio > 0.8, "peak ratio = {ratio}");
    }

    #[test]
    fn linear_interpolation_at_least_as_focused() {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(4, 4, 8);
        let target = on_voxel_target(&spec, vox);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let engine = ExactEngine::new(&spec);
        let nearest = Beamformer::new(&spec).with_interpolation(Interpolation::Nearest);
        let linear = Beamformer::new(&spec).with_interpolation(Interpolation::Linear);
        let pn = nearest.beamform_voxel(&engine, &rf, vox).abs();
        let pl = linear.beamform_voxel(&engine, &rf, vox).abs();
        assert!(pl > 0.9 * pn, "linear {pl} vs nearest {pn}");
    }

    #[test]
    fn scanline_profile_matches_volume_column() {
        let (spec, rf) = setup(Vec3::new(0.0, 0.0, 0.05));
        let engine = ExactEngine::new(&spec);
        let bf = Beamformer::new(&spec);
        let vol = bf.beamform_volume(&engine, &rf);
        let profile = bf.beamform_scanline(&engine, &rf, 2, 3);
        for (id, &v) in profile.iter().enumerate() {
            assert_eq!(v, vol.get(VoxelIndex::new(2, 3, id)));
        }
    }

    #[test]
    fn batched_tiled_path_is_bit_identical_to_scalar_path() {
        // The tentpole invariant: the parallel nappe-slab pipeline must
        // reproduce the per-voxel reference walk exactly, for approximate
        // engines and for both interpolation modes.
        let (spec, rf) = setup(Vec3::new(0.004, -0.002, 0.055));
        let exact = ExactEngine::new(&spec);
        let steer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        for interp in [Interpolation::Nearest, Interpolation::Linear] {
            for engine in [&exact as &dyn usbf_core::DelayEngine, &steer] {
                let batched = Beamformer::new(&spec)
                    .with_interpolation(interp)
                    .with_order(ScanOrder::NappeByNappe)
                    .beamform_volume(engine, &rf);
                let scalar = Beamformer::new(&spec)
                    .with_interpolation(interp)
                    .with_order(ScanOrder::ScanlineByScanline)
                    .beamform_volume(engine, &rf);
                assert_eq!(batched, scalar, "{} {interp:?}", engine.name());
            }
        }
    }

    #[test]
    fn batched_path_preserves_clamp_telemetry() {
        // A wide aperture on the tiny grid steers some corner fetches out
        // of the echo window; the batched path must count those clamps
        // exactly like the scalar path does.
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            usbf_geometry::TransducerSpec {
                nx: 100,
                ny: 100,
                ..base.transducer.clone()
            },
            base.volume.clone(),
            base.origin,
            base.frame_rate,
        );
        let rf = RfFrame::zeros(100, 100, spec.echo_buffer_len());
        let scalar_engine = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let batched_engine = scalar_engine.clone(); // fresh zeroed counter
        let bf = |order| {
            Beamformer::new(&spec)
                .with_apodization(crate::Apodization::Rect)
                .with_order(order)
        };
        bf(ScanOrder::ScanlineByScanline).beamform_volume(&scalar_engine, &rf);
        bf(ScanOrder::NappeByNappe).beamform_volume(&batched_engine, &rf);
        assert!(
            scalar_engine.clamp_events() > 0,
            "setup must actually clamp"
        );
        assert_eq!(batched_engine.clamp_events(), scalar_engine.clamp_events());
    }

    #[test]
    fn every_tile_schedule_gives_the_same_volume() {
        let (spec, rf) = setup(Vec3::new(0.0, 0.003, 0.06));
        let engine = ExactEngine::new(&spec);
        let bf = Beamformer::new(&spec);
        let reference =
            bf.beamform_volume_tiled(&engine, &rf, &usbf_core::NappeSchedule::fitted(&spec, 1));
        for target in [2, 4, 16, 64] {
            let schedule = usbf_core::NappeSchedule::fitted(&spec, target);
            let vol = bf.beamform_volume_tiled(&engine, &rf, &schedule);
            assert_eq!(vol, reference, "{target} tiles");
        }
    }

    #[test]
    fn empty_rf_gives_zero_volume() {
        let spec = SystemSpec::tiny();
        let rf = RfFrame::zeros(
            spec.elements.nx(),
            spec.elements.ny(),
            spec.echo_buffer_len(),
        );
        let engine = ExactEngine::new(&spec);
        let vol = Beamformer::new(&spec).beamform_volume(&engine, &rf);
        assert_eq!(vol.max_abs(), 0.0);
    }
}
