//! The overlapped frame pipeline: acquisition of frame `n+1` runs
//! concurrently with beamforming of frame `n`.
//!
//! The paper's bandwidth argument (§II-C) is about sustaining volume
//! *rates*: delays for every insonification must be regenerated
//! thousands of times per second, and §V-B's throughput arithmetic
//! assumes the delay blocks never sit idle. A host loop that acquires a
//! frame, then beamforms it, then acquires the next one serializes two
//! stages that hardware overlaps as a matter of course (the front end
//! fills one buffer while the beamformer drains another).
//! [`FramePipeline`] is that overlap on the host side:
//!
//! * a pluggable [`FrameSource`] produces RF frames into caller-owned
//!   buffers ([`SynthesizedFrames`] runs an
//!   [`EchoSynthesizer`](usbf_sim::EchoSynthesizer) per frame;
//!   [`FrameRing`] replays prerecorded frames);
//! * one persistent **acquisition thread** (spawned once, at
//!   construction) fills the back buffer of a two-deep ring while the
//!   calling thread and the shared worker pool beamform the front one;
//! * two [`VolumeLoop`] states on one pool double-buffer the output, so
//!   the previous frame's volume stays intact (for display or frame
//!   differencing) while the current one is written.
//!
//! A warm pipelined frame performs **zero thread spawns, zero
//! slab/buffer/volume allocations and zero per-tile job allocations**:
//! the RF buffers shuttle between the pipeline and the acquisition
//! thread by move, and each `VolumeLoop` drives its preregistered
//! [`JobHandle`](usbf_par::JobHandle). Output is bit-identical to
//! running the same frames through a serial [`VolumeLoop`], for any
//! engine and any pool size — the pipeline only reorders *when* work
//! happens, never *what* is computed.

use crate::{BeamformedVolume, Beamformer, VolumeLoop};
use std::any::Any;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use usbf_core::{DelayEngine, NappeSchedule};
use usbf_par::ThreadPool;
use usbf_sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

/// A producer of RF frames: the acquisition side of the pipeline.
///
/// `next_frame` fills a caller-owned buffer (never allocates); it is the
/// host-side stand-in for a probe front end writing into DMA memory.
/// Sources run on the pipeline's acquisition thread, so they only need
/// `Send`. A panic inside `next_frame` is caught by the pipeline and
/// surfaced as [`PipelineError::Source`]; the source is then reused for
/// the following frame, so panicking sources should remain internally
/// consistent across unwinds.
pub trait FrameSource: Send {
    /// Fills `out` with the next frame's receive data.
    fn next_frame(&mut self, out: &mut RfFrame);
}

/// Any `FnMut(&mut RfFrame) + Send` is a frame source — convenient for
/// tests and ad-hoc generators.
impl<F: FnMut(&mut RfFrame) + Send> FrameSource for F {
    fn next_frame(&mut self, out: &mut RfFrame) {
        self(out)
    }
}

/// A [`FrameSource`] that synthesizes each frame with an
/// [`EchoSynthesizer`], cycling through a list of phantoms (one phantom
/// per frame — a moving target is a list of its positions over time).
pub struct SynthesizedFrames {
    synth: EchoSynthesizer,
    pulse: Pulse,
    phantoms: Vec<Phantom>,
    next: usize,
}

impl SynthesizedFrames {
    /// Creates a source cycling through `phantoms`.
    ///
    /// # Panics
    ///
    /// Panics if `phantoms` is empty.
    #[must_use]
    pub fn new(synth: EchoSynthesizer, pulse: Pulse, phantoms: Vec<Phantom>) -> Self {
        assert!(!phantoms.is_empty(), "need at least one phantom");
        SynthesizedFrames {
            synth,
            pulse,
            phantoms,
            next: 0,
        }
    }
}

impl FrameSource for SynthesizedFrames {
    fn next_frame(&mut self, out: &mut RfFrame) {
        let phantom = &self.phantoms[self.next % self.phantoms.len()];
        self.next += 1;
        self.synth.synthesize_into(phantom, &self.pulse, out);
    }
}

/// A [`FrameSource`] replaying a ring of prerecorded frames — the
/// reproducible-input source determinism tests and benchmarks drive.
pub struct FrameRing {
    frames: Vec<RfFrame>,
    next: usize,
}

impl FrameRing {
    /// Creates a ring over `frames`, replayed in order, forever.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    #[must_use]
    pub fn new(frames: Vec<RfFrame>) -> Self {
        assert!(!frames.is_empty(), "need at least one frame");
        FrameRing { frames, next: 0 }
    }
}

impl FrameSource for FrameRing {
    fn next_frame(&mut self, out: &mut RfFrame) {
        out.copy_from(&self.frames[self.next % self.frames.len()]);
        self.next += 1;
    }
}

/// Why a pipelined frame failed. The pipeline itself survives any of
/// these: the next [`FramePipeline::next_volume`] call proceeds with a
/// fresh acquisition on the same pool, source and loop states.
#[derive(Debug)]
pub enum PipelineError {
    /// The frame source panicked during acquisition.
    Source(String),
    /// Beamforming panicked (e.g. a delay engine rejected an input).
    Beamform(String),
    /// The acquisition thread is gone — only possible after an internal
    /// failure of the pipeline itself, never after a source panic.
    Disconnected,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Source(msg) => write!(f, "frame source panicked: {msg}"),
            PipelineError::Beamform(msg) => write!(f, "beamforming panicked: {msg}"),
            PipelineError::Disconnected => write!(f, "acquisition thread disconnected"),
        }
    }
}

impl Error for PipelineError {}

/// Lifetime counters of a [`FramePipeline`], taken with
/// [`FramePipeline::stats`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineStats {
    /// Frames beamformed successfully.
    pub frames: u64,
    /// Frames lost to source or beamform errors.
    pub errors: u64,
    /// Total time `next_volume` spent blocked waiting for acquisition —
    /// the latency the overlap did *not* hide.
    pub acquire_wait: Duration,
    /// Total time spent beamforming.
    pub beamform_busy: Duration,
    /// Wall time since the first acquisition was submitted.
    pub wall: Duration,
}

impl PipelineStats {
    /// Sustained volume rate since the first frame.
    pub fn frames_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.frames as f64 / self.wall.as_secs_f64()
    }

    /// Mean time a frame waited on acquisition (the exposed, un-hidden
    /// ingest latency; 0 means acquisition was always ready first).
    /// Averaged over *attempted* frames — errored frames accrue wait
    /// time too, so they belong in the denominator.
    pub fn mean_acquire_wait(&self) -> Duration {
        let attempts = self.frames + self.errors;
        if attempts == 0 {
            return Duration::ZERO;
        }
        self.acquire_wait / attempts as u32
    }

    /// Mean beamforming time per attempted frame (errored frames accrue
    /// beamforming time up to the panic, so they are averaged in).
    pub fn mean_beamform(&self) -> Duration {
        let attempts = self.frames + self.errors;
        if attempts == 0 {
            return Duration::ZERO;
        }
        self.beamform_busy / attempts as u32
    }

    /// Fraction of wall time *not* spent blocked on acquisition — 1.0
    /// means ingest was fully hidden behind beamforming.
    pub fn overlap_fraction(&self) -> f64 {
        if self.wall.is_zero() {
            return 1.0;
        }
        1.0 - (self.acquire_wait.as_secs_f64() / self.wall.as_secs_f64()).min(1.0)
    }
}

/// Reply from the acquisition thread: the filled buffer, or the buffer
/// back plus the source's panic message.
type IngestReply = Result<RfFrame, (RfFrame, String)>;

/// The overlapped real-time runtime: double-buffered acquisition and
/// beamforming over one shared [`ThreadPool`]. See `ARCHITECTURE.md`
/// for how this maps onto the paper's real-time requirement.
///
/// ```
/// use usbf_beamform::{Beamformer, FramePipeline, FrameRing, VolumeLoop};
/// use usbf_core::ExactEngine;
/// use usbf_geometry::SystemSpec;
/// use usbf_sim::RfFrame;
///
/// let spec = SystemSpec::tiny();
/// let engine = ExactEngine::new(&spec);
/// let rf = RfFrame::zeros(8, 8, spec.echo_buffer_len());
/// // Pipelined frames are bit-identical to a serial VolumeLoop:
/// let mut serial = VolumeLoop::new(Beamformer::new(&spec));
/// let reference = serial.beamform(&engine, &rf).clone();
/// let mut pipe = FramePipeline::new(Beamformer::new(&spec), FrameRing::new(vec![rf]));
/// for _ in 0..3 {
///     let vol = pipe.next_volume(&engine).expect("no injected failures");
///     assert_eq!(vol, &reference);
/// }
/// assert_eq!(pipe.frames(), 3);
/// ```
pub struct FramePipeline {
    loops: [VolumeLoop; 2],
    req_tx: Option<Sender<RfFrame>>,
    done_rx: Receiver<IngestReply>,
    ingest: Option<JoinHandle<()>>,
    /// Buffers currently owned by the pipeline (not at the acquisition
    /// thread). Starts with both ring slots.
    idle: Vec<RfFrame>,
    /// Whether an acquisition is in flight (at most one).
    in_flight: bool,
    frames: u64,
    errors: u64,
    acquire_wait: Duration,
    beamform_busy: Duration,
    started: Option<Instant>,
}

impl FramePipeline {
    /// Builds a pipeline on the global pool with the same fitted
    /// schedule [`VolumeLoop::new`] uses, so pipelined volumes stay
    /// bit-identical to serial ones by construction.
    #[must_use]
    pub fn new<S: FrameSource + 'static>(beamformer: Beamformer, source: S) -> Self {
        let pool = usbf_par::global_arc();
        let schedule = crate::beamformer::pool_fitted_schedule(beamformer.spec(), &pool);
        Self::with_pool(beamformer, source, pool, &schedule)
    }

    /// Builds a pipeline on an explicit pool and schedule. All
    /// allocation happens here: two RF ring buffers, two [`VolumeLoop`]
    /// states (each with its warm slabs, staging buffers, output volume
    /// and preregistered pool job), and the acquisition thread — the
    /// only thread this runtime ever spawns.
    #[must_use]
    pub fn with_pool<S: FrameSource + 'static>(
        beamformer: Beamformer,
        source: S,
        pool: Arc<ThreadPool>,
        schedule: &NappeSchedule,
    ) -> Self {
        let spec = beamformer.spec();
        let make_buffer = || {
            RfFrame::zeros(
                spec.elements.nx(),
                spec.elements.ny(),
                spec.echo_buffer_len(),
            )
        };
        let idle = vec![make_buffer(), make_buffer()];
        let loops = [
            VolumeLoop::with_pool(beamformer.clone(), Arc::clone(&pool), schedule),
            VolumeLoop::with_pool(beamformer, Arc::clone(&pool), schedule),
        ];
        let (req_tx, req_rx) = mpsc::channel::<RfFrame>();
        let (done_tx, done_rx) = mpsc::channel::<IngestReply>();
        let ingest = std::thread::Builder::new()
            .name("usbf-ingest".to_string())
            .spawn(move || ingest_loop(source, req_rx, done_tx))
            .expect("spawn acquisition thread");
        FramePipeline {
            loops,
            req_tx: Some(req_tx),
            done_rx,
            ingest: Some(ingest),
            idle,
            in_flight: false,
            frames: 0,
            errors: 0,
            acquire_wait: Duration::ZERO,
            beamform_busy: Duration::ZERO,
            started: None,
        }
    }

    /// Starts acquiring the next frame if no acquisition is in flight.
    ///
    /// [`next_volume`](Self::next_volume) calls this itself (before
    /// waiting, and again right after taking a filled buffer — that
    /// second call *is* the overlap), so a plain `next_volume` loop is
    /// already pipelined; calling `submit` earlier only lets acquisition
    /// also overlap caller-side work between frames.
    pub fn submit(&mut self) {
        if self.in_flight {
            return;
        }
        let Some(buffer) = self.idle.pop() else {
            return;
        };
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        if let Some(tx) = &self.req_tx {
            // A send failure means the acquisition thread is gone; keep
            // the buffer and let next_volume report Disconnected.
            match tx.send(buffer) {
                Ok(()) => self.in_flight = true,
                Err(mpsc::SendError(buffer)) => self.idle.push(buffer),
            }
        }
    }

    /// Completes one pipeline step: waits for the in-flight acquisition,
    /// immediately submits the following one (overlapping it with this
    /// frame's beamforming), beamforms the acquired frame and returns
    /// its volume.
    ///
    /// On [`PipelineError::Source`] or [`PipelineError::Beamform`] the
    /// frame is dropped but the pipeline stays healthy: the buffers are
    /// recycled, the pool and both loop states remain warm, and the next
    /// call produces a correct volume.
    pub fn next_volume(
        &mut self,
        engine: &dyn DelayEngine,
    ) -> Result<&BeamformedVolume, PipelineError> {
        self.submit();
        if !self.in_flight {
            return Err(PipelineError::Disconnected);
        }
        let wait_start = Instant::now();
        let reply = self
            .done_rx
            .recv()
            .map_err(|_| PipelineError::Disconnected)?;
        self.in_flight = false;
        self.acquire_wait += wait_start.elapsed();
        let rf = match reply {
            Ok(rf) => rf,
            Err((buffer, message)) => {
                self.idle.push(buffer);
                self.errors += 1;
                return Err(PipelineError::Source(message));
            }
        };
        // The overlap: frame n+1 starts filling while frame n beamforms.
        self.submit();
        let which = (self.frames % 2) as usize;
        let beamform_start = Instant::now();
        let result = {
            let target = &mut self.loops[which];
            catch_unwind(AssertUnwindSafe(|| {
                let _ = target.beamform(engine, &rf);
            }))
        };
        self.beamform_busy += beamform_start.elapsed();
        self.idle.push(rf);
        match result {
            Ok(()) => {
                self.frames += 1;
                Ok(self.loops[which].volume())
            }
            Err(payload) => {
                self.errors += 1;
                Err(PipelineError::Beamform(panic_message(payload)))
            }
        }
    }

    /// The most recently completed volume (`None` before the first
    /// successful frame). Thanks to the two loop states this stays
    /// intact while the *next* frame is being beamformed into the other
    /// state.
    pub fn volume(&self) -> Option<&BeamformedVolume> {
        if self.frames == 0 {
            return None;
        }
        Some(self.loops[((self.frames - 1) % 2) as usize].volume())
    }

    /// The volume before the most recent one (`None` until two frames
    /// have completed) — the second half of the double buffer, e.g. for
    /// frame-to-frame differencing.
    pub fn previous_volume(&self) -> Option<&BeamformedVolume> {
        if self.frames < 2 {
            return None;
        }
        Some(self.loops[(self.frames % 2) as usize].volume())
    }

    /// Frames beamformed successfully since construction.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Frames lost to source or beamform errors.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Schedule tiles per frame (= parallel tasks per loop state).
    pub fn tile_count(&self) -> usize {
        self.loops[0].tile_count()
    }

    /// A snapshot of the pipeline's lifetime counters.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            frames: self.frames,
            errors: self.errors,
            acquire_wait: self.acquire_wait,
            beamform_busy: self.beamform_busy,
            wall: self.started.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        }
    }
}

impl Drop for FramePipeline {
    fn drop(&mut self) {
        // Closing the request channel ends the acquisition loop; join so
        // no thread outlives the pipeline.
        self.req_tx = None;
        if let Some(handle) = self.ingest.take() {
            let _ = handle.join();
        }
    }
}

/// The acquisition thread: fill each buffer the pipeline sends, return
/// it (or the panic that interrupted it), repeat until the pipeline
/// drops. Source panics are caught here so one bad frame never kills
/// the thread.
fn ingest_loop<S: FrameSource>(
    mut source: S,
    req_rx: Receiver<RfFrame>,
    done_tx: Sender<IngestReply>,
) {
    while let Ok(mut buffer) = req_rx.recv() {
        let result = catch_unwind(AssertUnwindSafe(|| source.next_frame(&mut buffer)));
        let reply = match result {
            Ok(()) => Ok(buffer),
            Err(payload) => Err((buffer, panic_message(payload))),
        };
        if done_tx.send(reply).is_err() {
            return;
        }
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usbf_core::ExactEngine;
    use usbf_geometry::{SystemSpec, Vec3, VoxelIndex};

    fn recorded_frames(spec: &SystemSpec, n: usize) -> Vec<RfFrame> {
        let synth = EchoSynthesizer::new(spec);
        let pulse = Pulse::from_spec(spec);
        (0..n)
            .map(|i| {
                let vox = VoxelIndex::new(2 + i % 4, 3, 5 + i);
                synth.synthesize(&Phantom::point(spec.volume_grid.position(vox)), &pulse)
            })
            .collect()
    }

    #[test]
    fn pipelined_frames_match_serial_volume_loop_bit_for_bit() {
        let spec = SystemSpec::tiny();
        let engine = ExactEngine::new(&spec);
        let frames = recorded_frames(&spec, 3);
        let pool = Arc::new(ThreadPool::new(2));
        let schedule = NappeSchedule::fitted(&spec, 8);
        let mut serial =
            VolumeLoop::with_pool(Beamformer::new(&spec), Arc::clone(&pool), &schedule);
        let reference: Vec<BeamformedVolume> = frames
            .iter()
            .map(|rf| serial.beamform(&engine, rf).clone())
            .collect();
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            FrameRing::new(frames),
            pool,
            &schedule,
        );
        for round in 0..9 {
            let vol = pipe.next_volume(&engine).expect("healthy pipeline");
            assert_eq!(vol, &reference[round % 3], "frame {round}");
        }
        assert_eq!(pipe.frames(), 9);
        assert_eq!(pipe.errors(), 0);
    }

    #[test]
    fn double_buffer_keeps_previous_volume_intact() {
        let spec = SystemSpec::tiny();
        let engine = ExactEngine::new(&spec);
        let frames = recorded_frames(&spec, 2);
        let mut pipe = FramePipeline::new(Beamformer::new(&spec), FrameRing::new(frames));
        assert!(pipe.volume().is_none());
        let first = pipe.next_volume(&engine).unwrap().clone();
        assert_eq!(pipe.volume(), Some(&first));
        assert!(pipe.previous_volume().is_none());
        let second = pipe.next_volume(&engine).unwrap().clone();
        assert_ne!(first, second, "distinct inputs give distinct volumes");
        assert_eq!(pipe.volume(), Some(&second));
        assert_eq!(pipe.previous_volume(), Some(&first));
    }

    #[test]
    fn synthesized_source_matches_offline_synthesis() {
        let spec = SystemSpec::tiny();
        let engine = ExactEngine::new(&spec);
        let pulse = Pulse::from_spec(&spec);
        let targets: Vec<Vec3> = (0..3)
            .map(|i| spec.volume_grid.position(VoxelIndex::new(4, 4, 6 + 2 * i)))
            .collect();
        let phantoms: Vec<Phantom> = targets.iter().map(|&t| Phantom::point(t)).collect();
        let source =
            SynthesizedFrames::new(EchoSynthesizer::new(&spec), pulse.clone(), phantoms.clone());
        let mut pipe = FramePipeline::new(Beamformer::new(&spec), source);
        let mut serial = VolumeLoop::new(Beamformer::new(&spec));
        let synth = EchoSynthesizer::new(&spec);
        for (i, phantom) in phantoms.iter().enumerate() {
            let rf = synth.synthesize(phantom, &pulse);
            let expect = serial.beamform(&engine, &rf).clone();
            let got = pipe.next_volume(&engine).expect("healthy pipeline");
            assert_eq!(got, &expect, "frame {i}");
        }
    }

    #[test]
    fn stats_track_frames_and_busy_time() {
        let spec = SystemSpec::tiny();
        let engine = ExactEngine::new(&spec);
        let mut pipe = FramePipeline::new(
            Beamformer::new(&spec),
            FrameRing::new(recorded_frames(&spec, 1)),
        );
        for _ in 0..5 {
            pipe.next_volume(&engine).unwrap();
        }
        let stats = pipe.stats();
        assert_eq!(stats.frames, 5);
        assert_eq!(stats.errors, 0);
        assert!(stats.beamform_busy > Duration::ZERO);
        assert!(stats.wall >= stats.beamform_busy);
        assert!(stats.frames_per_second() > 0.0);
        assert!(stats.overlap_fraction() >= 0.0 && stats.overlap_fraction() <= 1.0);
        assert!(stats.mean_beamform() > Duration::ZERO);
        let _ = stats.mean_acquire_wait();
    }

    #[test]
    fn closure_sources_and_submit_ahead_work() {
        let spec = SystemSpec::tiny();
        let engine = ExactEngine::new(&spec);
        let calls = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let recorder = Arc::clone(&calls);
        let source = move |out: &mut RfFrame| {
            out.fill(0.0);
            recorder.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        };
        let mut pipe = FramePipeline::new(Beamformer::new(&spec), source);
        pipe.submit(); // explicit early submit: acquisition starts now
        let vol = pipe.next_volume(&engine).unwrap();
        assert_eq!(vol.max_abs(), 0.0);
        assert_eq!(pipe.frames(), 1);
        // The first acquisition plus the overlapped second one.
        assert!(calls.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }
}
