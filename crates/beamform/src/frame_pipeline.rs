//! The asynchronous frame pipeline: acquisition of frame `n+1`,
//! beamforming of frame `n` and the caller's consumption of volume
//! `n−1` all run concurrently.
//!
//! The paper's bandwidth argument (§II-C) is about sustaining volume
//! *rates*: delays for every insonification must be regenerated
//! thousands of times per second, and §V-B's throughput arithmetic
//! assumes the delay blocks never sit idle. A host loop that acquires a
//! frame, then beamforms it, then displays it serializes three stages
//! that hardware overlaps as a matter of course. [`FramePipeline`] is
//! that overlap on the host side:
//!
//! * a pluggable [`FrameSource`] produces RF frames into caller-owned
//!   buffers ([`SynthesizedFrames`] runs an
//!   [`EchoSynthesizer`](usbf_sim::EchoSynthesizer) per frame;
//!   [`FrameRing`] replays prerecorded frames) on one persistent
//!   **acquisition thread** (spawned once, at construction), handing
//!   buffers back and forth through a preallocated two-slot exchange —
//!   no channel, no per-frame allocation;
//! * [`FramePipeline::submit`] takes the acquired frame, kicks off the
//!   **next** acquisition, starts beamforming on the shared worker pool
//!   via an asynchronous [`PendingJob`](usbf_par::PendingJob) run, and
//!   returns immediately with a [`VolumeTicket`];
//! * the ticket is the caller's handle on the in-flight frame: while it
//!   beamforms, [`VolumeTicket::previous_volume`] exposes the frame
//!   before it (intact in the other half of the double buffer — the
//!   "consume volume `n−1`" stage), [`VolumeTicket::try_wait`] polls,
//!   and [`VolumeTicket::wait`] redeems the finished volume;
//! * [`FramePipeline::next_volume`] is `submit` + `wait` — the
//!   synchronous convenience loop, still two-stage overlapped because
//!   `submit` always starts acquisition `n+1` before beamforming `n`.
//!
//! A warm pipelined frame performs **zero heap allocations**: zero
//! thread spawns, zero slab/buffer/volume allocations, zero per-tile
//! job allocations and zero channel nodes — the RF buffers shuttle
//! between the pipeline and the acquisition thread by move through the
//! mutex-guarded exchange, and the tile tasks run on the pipeline's
//! preregistered [`JobHandle`](usbf_par::JobHandle). Output is
//! bit-identical to running the same frames through a serial
//! [`VolumeLoop`](crate::VolumeLoop), for any engine and any pool size
//! — the pipeline only reorders *when* work happens, never *what* is
//! computed.

use crate::beamformer::TileState;
use crate::{BeamformedVolume, Beamformer};
use std::any::Any;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use usbf_core::{DelayEngine, NappeSchedule, Tile};
use usbf_par::{JobHandle, PendingJob, ThreadPool};
use usbf_sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

/// A producer of RF frames: the acquisition side of the pipeline.
///
/// `next_frame` fills a caller-owned buffer (never allocates); it is the
/// host-side stand-in for a probe front end writing into DMA memory.
/// Sources run on the pipeline's acquisition thread, so they only need
/// `Send`. A panic inside `next_frame` is caught by the pipeline and
/// surfaced as [`PipelineError::Source`]; the source is then reused for
/// the following frame, so panicking sources should remain internally
/// consistent across unwinds.
pub trait FrameSource: Send {
    /// Fills `out` with the next frame's receive data.
    fn next_frame(&mut self, out: &mut RfFrame);
}

/// Any `FnMut(&mut RfFrame) + Send` is a frame source — convenient for
/// tests and ad-hoc generators.
impl<F: FnMut(&mut RfFrame) + Send> FrameSource for F {
    fn next_frame(&mut self, out: &mut RfFrame) {
        self(out)
    }
}

/// A [`FrameSource`] that synthesizes each frame with an
/// [`EchoSynthesizer`], cycling through a list of phantoms (one phantom
/// per frame — a moving target is a list of its positions over time).
pub struct SynthesizedFrames {
    synth: EchoSynthesizer,
    pulse: Pulse,
    phantoms: Vec<Phantom>,
    next: usize,
}

impl SynthesizedFrames {
    /// Creates a source cycling through `phantoms`.
    ///
    /// # Panics
    ///
    /// Panics if `phantoms` is empty.
    #[must_use]
    pub fn new(synth: EchoSynthesizer, pulse: Pulse, phantoms: Vec<Phantom>) -> Self {
        assert!(!phantoms.is_empty(), "need at least one phantom");
        SynthesizedFrames {
            synth,
            pulse,
            phantoms,
            next: 0,
        }
    }
}

impl FrameSource for SynthesizedFrames {
    fn next_frame(&mut self, out: &mut RfFrame) {
        let phantom = &self.phantoms[self.next % self.phantoms.len()];
        self.next += 1;
        self.synth.synthesize_into(phantom, &self.pulse, out);
    }
}

/// A [`FrameSource`] replaying a ring of prerecorded frames — the
/// reproducible-input source determinism tests and benchmarks drive.
pub struct FrameRing {
    frames: Vec<RfFrame>,
    next: usize,
}

impl FrameRing {
    /// Creates a ring over `frames`, replayed in order, forever.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    #[must_use]
    pub fn new(frames: Vec<RfFrame>) -> Self {
        assert!(!frames.is_empty(), "need at least one frame");
        FrameRing { frames, next: 0 }
    }
}

impl FrameSource for FrameRing {
    fn next_frame(&mut self, out: &mut RfFrame) {
        out.copy_from(&self.frames[self.next % self.frames.len()]);
        self.next += 1;
    }
}

/// Why a pipelined frame failed. The pipeline itself survives any of
/// these except [`Disconnected`](PipelineError::Disconnected): the next
/// [`FramePipeline::submit`] proceeds with a fresh acquisition on the
/// same pool, source and warm state.
#[derive(Debug)]
pub enum PipelineError {
    /// The frame source panicked during acquisition.
    Source(String),
    /// Beamforming panicked (e.g. a delay engine rejected an input).
    Beamform(String),
    /// The acquisition thread is gone — only possible after an internal
    /// failure of the pipeline itself, never after a source panic.
    Disconnected,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Source(msg) => write!(f, "frame source panicked: {msg}"),
            PipelineError::Beamform(msg) => write!(f, "beamforming panicked: {msg}"),
            PipelineError::Disconnected => write!(f, "acquisition thread disconnected"),
        }
    }
}

impl Error for PipelineError {}

/// Lifetime counters of a [`FramePipeline`], taken with
/// [`FramePipeline::stats`].
///
/// The two wait counters attribute blocked time to the stage that
/// actually caused it: `acquire_wait` is accrued only while `submit`
/// blocks on the acquisition thread, `beamform_wait` only while a
/// [`VolumeTicket`] redemption blocks on the worker pool. Earlier
/// revisions lumped ticket-redemption wait into `acquire_wait`, which
/// made the overlap look worse than it was whenever beamforming — not
/// ingest — was the bottleneck.
#[derive(Debug, Clone, Copy)]
pub struct PipelineStats {
    /// Frames beamformed successfully.
    pub frames: u64,
    /// Frames lost to source or beamform errors.
    pub errors: u64,
    /// Frames whose ticket was dropped without being redeemed.
    pub abandoned: u64,
    /// Total time `submit` spent blocked waiting for acquisition — the
    /// ingest latency the overlap did *not* hide.
    pub acquire_wait: Duration,
    /// Total time ticket redemption (`wait`/`next_volume`) spent blocked
    /// on in-flight beamforming — the compute latency the caller did not
    /// overlap with work of their own.
    pub beamform_wait: Duration,
    /// Wall time since the first acquisition was submitted.
    pub wall: Duration,
    /// Distribution of per-frame submit→complete latencies (successful
    /// frames only): each redeemed ticket records the elapsed time from
    /// its `submit` call to redemption. Ask it for
    /// [`p50`](crate::LatencyHistogram::p50) /
    /// [`p99`](crate::LatencyHistogram::p99) — means hide exactly the
    /// tail behaviour a multi-shard runtime must keep honest about.
    pub latency: crate::LatencyHistogram,
}

impl PipelineStats {
    /// Frames attempted: successes, errors and abandoned tickets all
    /// accrue wait time, so they share the denominator of the means.
    fn attempts(&self) -> u64 {
        self.frames + self.errors + self.abandoned
    }

    /// Sustained volume rate since the first frame.
    pub fn frames_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.frames as f64 / self.wall.as_secs_f64()
    }

    /// Mean time a frame waited on acquisition (the exposed, un-hidden
    /// ingest latency; 0 means acquisition was always ready first).
    pub fn mean_acquire_wait(&self) -> Duration {
        mean_duration(self.acquire_wait, self.attempts())
    }

    /// Mean time a frame's redemption blocked on beamforming (0 means
    /// the caller's own work always outlasted the in-flight compute).
    pub fn mean_beamform_wait(&self) -> Duration {
        mean_duration(self.beamform_wait, self.attempts())
    }

    /// Fraction of wall time *not* spent blocked on acquisition — 1.0
    /// means ingest was fully hidden behind beamforming and caller-side
    /// work.
    pub fn overlap_fraction(&self) -> f64 {
        if self.wall.is_zero() {
            return 1.0;
        }
        1.0 - (self.acquire_wait.as_secs_f64() / self.wall.as_secs_f64()).min(1.0)
    }
}

/// `total / count` as a well-defined [`Duration`]: zero for zero
/// counts, computed in nanoseconds at `u128` width for the rest.
///
/// The obvious `total / count as u32` has two failure modes once counts
/// come from a `u64` lifetime counter: a count above `u32::MAX`
/// truncates silently, and a count of exactly `2³²` truncates to zero
/// and panics the division. A long-lived shard at paper-scale volume
/// rates (thousands of frames per second) crosses `u32::MAX` attempts
/// in under two months of uptime.
fn mean_duration(total: Duration, count: u64) -> Duration {
    if count == 0 {
        return Duration::ZERO;
    }
    let nanos = total.as_nanos() / u128::from(count);
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

/// Reply from the acquisition thread: the filled buffer, or the buffer
/// back plus the source's panic message.
type IngestReply = Result<RfFrame, (RfFrame, String)>;

/// The preallocated two-slot exchange between the pipeline and its
/// acquisition thread. One mutex, two condvars, zero per-frame heap
/// traffic: buffers move through `request`/`reply` slots instead of
/// channel nodes (an `mpsc` send may allocate; this never does, which
/// is what keeps the warm async path at 0 allocations — see
/// `tests/warm_frame_allocs.rs`).
struct IngestLink {
    state: Mutex<LinkState>,
    /// Wakes the acquisition thread (a request or shutdown arrived).
    to_source: Condvar,
    /// Wakes the pipeline (a reply arrived, or the thread died).
    to_pipe: Condvar,
}

struct LinkState {
    request: Option<RfFrame>,
    reply: Option<IngestReply>,
    /// Set by the pipeline's drop: the acquisition thread exits.
    shutdown: bool,
    /// Set by the acquisition thread on *any* exit path, expected or
    /// not, so a waiting pipeline can report `Disconnected` instead of
    /// parking forever.
    dead: bool,
}

impl IngestLink {
    fn new() -> Self {
        IngestLink {
            state: Mutex::new(LinkState {
                request: None,
                reply: None,
                shutdown: false,
                dead: false,
            }),
            to_source: Condvar::new(),
            to_pipe: Condvar::new(),
        }
    }
}

/// The read-only context every tile task of a frame shares: the fixed
/// beamformer configuration plus the per-frame inputs (`engine` is an
/// `Arc` so the pipeline owns it across the in-flight period; `rf` is
/// the acquired frame, swapped in by `submit`). Living in a pipeline
/// field — not on `submit`'s stack — is what lets the asynchronous run
/// borrow it for as long as the [`VolumeTicket`] lives.
struct FrameCtx {
    beamformer: Beamformer,
    engine: Arc<dyn DelayEngine + Send + Sync>,
    rf: RfFrame,
}

/// The tile task: one schedule tile beamformed into its warm state
/// (slab, scratch rows and staging buffer). A plain `fn` — the
/// asynchronous dispatch path erases no closures.
fn beamform_tile_task(ctx: &FrameCtx, _i: usize, state: &mut TileState) {
    ctx.beamformer
        .beamform_tile_into(ctx.engine.as_ref(), &ctx.rf, state);
}

/// Everything ticket redemption and the read accessors touch, split
/// into one struct so a [`VolumeTicket`] can hold `&mut` to it while
/// the in-flight [`PendingJob`] borrows the tile states and context —
/// disjoint pipeline fields, checked by the borrow checker.
struct FinishState {
    tiles: Vec<Tile>,
    n_depth: usize,
    /// Double-buffered output: frame `n` scatters into `outs[n % 2]`,
    /// leaving `n−1` intact for consumption while `n` is in flight.
    outs: [BeamformedVolume; 2],
    frames: u64,
    errors: u64,
    abandoned: u64,
    acquire_wait: Duration,
    beamform_wait: Duration,
    latency: crate::LatencyHistogram,
    started: Option<Instant>,
    link: Arc<IngestLink>,
    ingest: Option<JoinHandle<()>>,
    /// Buffers currently owned by the pipeline side and not holding the
    /// in-flight frame (that one lives in `FrameCtx::rf`).
    idle: Vec<RfFrame>,
    /// Whether an acquisition request is outstanding (at most one).
    in_flight: bool,
}

/// The asynchronous real-time runtime: acquisition, beamforming and
/// consumption overlapped over one shared [`ThreadPool`]. See
/// `ARCHITECTURE.md` for how this maps onto the paper's real-time
/// requirement.
///
/// ```
/// use std::sync::Arc;
/// use usbf_beamform::{Beamformer, FramePipeline, FrameRing, VolumeLoop};
/// use usbf_core::ExactEngine;
/// use usbf_geometry::SystemSpec;
/// use usbf_sim::RfFrame;
///
/// let spec = SystemSpec::tiny();
/// let engine = Arc::new(ExactEngine::new(&spec));
/// let rf = RfFrame::zeros(8, 8, spec.echo_buffer_len());
/// // Pipelined frames are bit-identical to a serial VolumeLoop:
/// let mut serial = VolumeLoop::new(Beamformer::new(&spec));
/// let reference = serial.beamform(engine.as_ref(), &rf).clone();
/// let mut pipe = FramePipeline::new(
///     Beamformer::new(&spec),
///     engine,
///     FrameRing::new(vec![rf]),
/// );
/// // Asynchronous shape: submit, overlap caller-side work, redeem.
/// let ticket = pipe.submit().expect("healthy acquisition");
/// assert!(ticket.previous_volume().is_none()); // no frame before the first
/// let vol = ticket.wait().expect("no injected failures");
/// assert_eq!(vol, &reference);
/// // Synchronous convenience shape: next_volume = submit + wait.
/// for _ in 0..2 {
///     let vol = pipe.next_volume().expect("no injected failures");
///     assert_eq!(vol, &reference);
/// }
/// assert_eq!(pipe.frames(), 3);
/// ```
pub struct FramePipeline {
    /// Declared before `tile_states`/`ctx` on purpose: fields drop in
    /// declaration order, and `JobHandle`'s drop joins any still-active
    /// run — so even if a `VolumeTicket` is leaked, the workers are
    /// joined before the state they write to is freed.
    job: JobHandle,
    tile_states: Vec<TileState>,
    ctx: FrameCtx,
    fin: FinishState,
}

impl FramePipeline {
    /// Builds a pipeline on the global pool with the same fitted
    /// schedule [`VolumeLoop`](crate::VolumeLoop) uses, so pipelined
    /// volumes stay bit-identical to serial ones by construction. The
    /// pipeline owns its delay engine (shared, cheaply cloneable `Arc`):
    /// that ownership is what lets beamforming stay in flight after
    /// `submit` returns.
    #[must_use]
    pub fn new<S: FrameSource + 'static>(
        beamformer: Beamformer,
        engine: Arc<dyn DelayEngine + Send + Sync>,
        source: S,
    ) -> Self {
        let pool = usbf_par::global_arc();
        let schedule = crate::beamformer::pool_fitted_schedule(beamformer.spec(), &pool);
        Self::with_pool(beamformer, engine, source, pool, &schedule)
    }

    /// Builds a pipeline on an explicit pool and schedule. All
    /// allocation happens here: three RF ring buffers (current,
    /// acquiring, idle), one delay slab and staging buffer per schedule
    /// tile, the double-buffered output volumes, the preregistered pool
    /// job, and the acquisition thread — the only thread this runtime
    /// ever spawns.
    #[must_use]
    pub fn with_pool<S: FrameSource + 'static>(
        beamformer: Beamformer,
        engine: Arc<dyn DelayEngine + Send + Sync>,
        source: S,
        pool: Arc<ThreadPool>,
        schedule: &NappeSchedule,
    ) -> Self {
        let spec = beamformer.spec().clone();
        let n_depth = spec.volume_grid.n_depth();
        // Buffers hold one acquisition block per transmit of the spec's
        // sequence, so an N-angle compound moves through the pipeline as
        // ONE frame (one submit, one ticket, one volume).
        let make_buffer = || {
            RfFrame::zeros_multi(
                spec.elements.nx(),
                spec.elements.ny(),
                spec.echo_buffer_len(),
                spec.n_transmits(),
            )
        };
        let tiles = schedule.tiles();
        let tile_states = crate::beamformer::warm_tile_states(&beamformer, &tiles);
        let outs = [
            BeamformedVolume::zeros(&spec),
            BeamformedVolume::zeros(&spec),
        ];
        let link = Arc::new(IngestLink::new());
        let ingest_link = Arc::clone(&link);
        let ingest = std::thread::Builder::new()
            .name("usbf-ingest".to_string())
            .spawn(move || ingest_loop(source, ingest_link))
            .expect("spawn acquisition thread");
        FramePipeline {
            job: ThreadPool::register(&pool),
            tile_states,
            ctx: FrameCtx {
                beamformer,
                engine,
                rf: make_buffer(),
            },
            fin: FinishState {
                tiles,
                n_depth,
                outs,
                frames: 0,
                errors: 0,
                abandoned: 0,
                acquire_wait: Duration::ZERO,
                beamform_wait: Duration::ZERO,
                latency: crate::LatencyHistogram::new(),
                started: None,
                link,
                ingest: Some(ingest),
                idle: vec![make_buffer(), make_buffer()],
                in_flight: false,
            },
        }
    }

    /// Sends an idle buffer to the acquisition thread if no request is
    /// outstanding. Infallible bookkeeping: a dead thread is detected by
    /// the next receive, which reports [`PipelineError::Disconnected`].
    fn request_acquire(fin: &mut FinishState) {
        if fin.in_flight {
            return;
        }
        let Some(buffer) = fin.idle.pop() else {
            return;
        };
        if fin.started.is_none() {
            fin.started = Some(Instant::now());
        }
        let mut st = fin.link.state.lock().unwrap();
        if st.dead {
            drop(st);
            fin.idle.push(buffer);
            return;
        }
        debug_assert!(st.request.is_none(), "at most one request in flight");
        st.request = Some(buffer);
        drop(st);
        fin.link.to_source.notify_all();
        fin.in_flight = true;
    }

    /// Blocks until the outstanding acquisition completes, accruing the
    /// blocked time to `acquire_wait`.
    fn recv_acquired(fin: &mut FinishState) -> Result<RfFrame, PipelineError> {
        let wait_start = Instant::now();
        let reply = {
            let mut st = fin.link.state.lock().unwrap();
            loop {
                if let Some(reply) = st.reply.take() {
                    break reply;
                }
                if st.dead {
                    drop(st);
                    fin.in_flight = false;
                    fin.acquire_wait += wait_start.elapsed();
                    return Err(PipelineError::Disconnected);
                }
                st = fin.link.to_pipe.wait(st).unwrap();
            }
        };
        fin.in_flight = false;
        fin.acquire_wait += wait_start.elapsed();
        match reply {
            Ok(rf) => Ok(rf),
            Err((buffer, message)) => {
                fin.idle.push(buffer);
                fin.errors += 1;
                Err(PipelineError::Source(message))
            }
        }
    }

    /// Submits one frame: waits for the in-flight acquisition (frame
    /// `n`), immediately starts acquiring frame `n+1`, kicks off
    /// beamforming of frame `n` on the pool and returns a
    /// [`VolumeTicket`] **while the work is still in flight**. The
    /// caller is free to do its own work — typically consuming
    /// [`VolumeTicket::previous_volume`], the completed frame `n−1` —
    /// before redeeming the ticket with [`VolumeTicket::wait`].
    ///
    /// On [`PipelineError::Source`] the frame is dropped but the
    /// pipeline stays healthy: the buffers are recycled, the pool and
    /// warm state survive, and the next call produces a correct volume.
    pub fn submit(&mut self) -> Result<VolumeTicket<'_>, PipelineError> {
        let submitted = Instant::now();
        Self::request_acquire(&mut self.fin);
        if !self.fin.in_flight {
            return Err(PipelineError::Disconnected);
        }
        let rf = Self::recv_acquired(&mut self.fin)?;
        // Frame n moves into the shared context; the buffer it replaces
        // (frame n−1's, already consumed) rejoins the idle ring.
        let consumed = std::mem::replace(&mut self.ctx.rf, rf);
        self.fin.idle.push(consumed);
        // The third overlap stage: frame n+1 starts filling now, before
        // frame n's beamforming is even announced.
        Self::request_acquire(&mut self.fin);
        let which = (self.fin.frames % 2) as usize;
        let frame_id = self.fin.frames + self.fin.errors + self.fin.abandoned;
        let pending = self
            .job
            .start(&mut self.tile_states, &self.ctx, beamform_tile_task);
        Ok(VolumeTicket {
            pending: Some(pending),
            fin: Some(&mut self.fin),
            which,
            frame_id,
            submitted,
        })
    }

    /// Completes one pipeline step synchronously: [`submit`](Self::submit)
    /// then [`VolumeTicket::wait`]. Acquisition of the following frame
    /// still overlaps this frame's beamforming; only the caller-side
    /// consumption overlap needs the explicit ticket shape.
    pub fn next_volume(&mut self) -> Result<&BeamformedVolume, PipelineError> {
        self.submit()?.wait()
    }

    /// The most recently completed volume (`None` before the first
    /// successful frame). Thanks to the double buffer this stays intact
    /// while the *next* frame is being beamformed into the other half.
    pub fn volume(&self) -> Option<&BeamformedVolume> {
        if self.fin.frames == 0 {
            return None;
        }
        Some(&self.fin.outs[((self.fin.frames - 1) % 2) as usize])
    }

    /// The volume before the most recent one (`None` until two frames
    /// have completed) — the second half of the double buffer, e.g. for
    /// frame-to-frame differencing.
    pub fn previous_volume(&self) -> Option<&BeamformedVolume> {
        if self.fin.frames < 2 {
            return None;
        }
        Some(&self.fin.outs[(self.fin.frames % 2) as usize])
    }

    /// A zero-scatter view over the most recent successful frame's tile
    /// outputs (`None` before the first one):
    /// [`slice`](crate::VolumeView::slice) and
    /// [`mip`](crate::VolumeView::mip) read the warm staging buffers
    /// directly, skipping the merged volume entirely. The view borrows
    /// the pipeline, so it can never observe a frame mid-flight — a
    /// [`VolumeTicket`] holds the pipeline's `&mut` until redeemed.
    pub fn view(&self) -> Option<crate::VolumeView<'_>> {
        if self.fin.frames == 0 {
            return None;
        }
        let grid = &self.ctx.beamformer.spec().volume_grid;
        Some(crate::VolumeView::new(
            &self.fin.tiles,
            &self.tile_states,
            grid.n_theta(),
            grid.n_phi(),
            grid.n_depth(),
        ))
    }

    /// Frames beamformed successfully since construction.
    pub fn frames(&self) -> u64 {
        self.fin.frames
    }

    /// Frames lost to source or beamform errors.
    pub fn errors(&self) -> u64 {
        self.fin.errors
    }

    /// Frames whose ticket was dropped without redemption.
    pub fn abandoned(&self) -> u64 {
        self.fin.abandoned
    }

    /// Schedule tiles per frame (= parallel tasks per submitted frame).
    pub fn tile_count(&self) -> usize {
        self.fin.tiles.len()
    }

    /// The delay engine this pipeline beamforms with.
    pub fn engine(&self) -> &Arc<dyn DelayEngine + Send + Sync> {
        &self.ctx.engine
    }

    /// The beamformer configuration driving the pipeline.
    pub fn beamformer(&self) -> &Beamformer {
        &self.ctx.beamformer
    }

    /// A snapshot of the pipeline's lifetime counters.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            frames: self.fin.frames,
            errors: self.fin.errors,
            abandoned: self.fin.abandoned,
            acquire_wait: self.fin.acquire_wait,
            beamform_wait: self.fin.beamform_wait,
            latency: self.fin.latency,
            wall: self
                .fin
                .started
                .map(|s| s.elapsed())
                .unwrap_or(Duration::ZERO),
        }
    }
}

impl Drop for FramePipeline {
    fn drop(&mut self) {
        // Flag shutdown and wake the acquisition thread, then join so no
        // thread outlives the pipeline. (An in-flight beamform job
        // cannot exist here: its ticket borrows the pipeline.)
        if let Ok(mut st) = self.fin.link.state.lock() {
            st.shutdown = true;
        }
        self.fin.link.to_source.notify_all();
        if let Some(handle) = self.fin.ingest.take() {
            let _ = handle.join();
        }
    }
}

/// The caller's handle on one in-flight frame, returned by
/// [`FramePipeline::submit`]. While it lives, the frame's tile tasks are
/// executing on the worker pool; the ticket borrows the pipeline, so no
/// second frame can be submitted until this one is redeemed or dropped.
///
/// * [`wait`](VolumeTicket::wait) — block until beamforming finishes
///   (helping drain tile tasks), scatter the tiles into the output
///   volume and return it; engine panics surface as
///   [`PipelineError::Beamform`] and the pipeline stays healthy;
/// * [`try_wait`](VolumeTicket::try_wait) — poll without blocking;
/// * [`previous_volume`](VolumeTicket::previous_volume) — the completed
///   frame before this one, readable **while** this one beamforms (the
///   consume stage of the three-way overlap);
/// * dropping the ticket joins the in-flight work and abandons the
///   frame (counted in [`PipelineStats::abandoned`], no volume
///   produced).
#[must_use = "dropping a VolumeTicket abandons the frame; call wait()"]
pub struct VolumeTicket<'p> {
    pending: Option<PendingJob<'p, TileState>>,
    fin: Option<&'p mut FinishState>,
    which: usize,
    frame_id: u64,
    /// When `submit` was entered — redemption records the elapsed time
    /// into the pipeline's latency histogram, so the per-frame figure
    /// covers acquisition wait *and* beamforming, the full turnaround a
    /// downstream consumer experiences.
    submitted: Instant,
}

impl<'p> VolumeTicket<'p> {
    /// Ordinal of this submission since construction (counting
    /// successes, errors and abandoned frames).
    pub fn frame_id(&self) -> u64 {
        self.frame_id
    }

    /// Returns `true` once the in-flight beamforming has finished —
    /// [`wait`](Self::wait) will then return without blocking.
    pub fn try_wait(&self) -> bool {
        self.pending.as_ref().is_none_or(|p| p.try_wait())
    }

    /// The most recently completed volume — frame `n−1`, intact in the
    /// other half of the double buffer while this ticket's frame `n`
    /// beamforms. `None` before the first completed frame.
    pub fn previous_volume(&self) -> Option<&BeamformedVolume> {
        let fin = self.fin.as_deref()?;
        if fin.frames == 0 {
            return None;
        }
        Some(&fin.outs[1 - self.which])
    }

    /// Redeems the ticket: blocks until every tile task has finished
    /// (claiming remaining tasks on this thread, so redemption is never
    /// slower than the synchronous path), scatters the tile results
    /// into the output volume and returns it.
    ///
    /// If the engine panicked mid-flight, the panic is returned as
    /// [`PipelineError::Beamform`] after the join — the pool, the warm
    /// state and the acquisition thread all remain usable.
    pub fn wait(mut self) -> Result<&'p BeamformedVolume, PipelineError> {
        let pending = self.pending.take().expect("a ticket is redeemed once");
        let fin = self.fin.take().expect("a ticket is redeemed once");
        let wait_start = Instant::now();
        let (states, payload) = pending.wait_result();
        fin.beamform_wait += wait_start.elapsed();
        match payload {
            None => {
                crate::beamformer::scatter_tiles(
                    &mut fin.outs[self.which],
                    &fin.tiles,
                    states,
                    fin.n_depth,
                );
                fin.frames += 1;
                fin.latency.record(self.submitted.elapsed());
                Ok(&fin.outs[self.which])
            }
            Some(payload) => {
                fin.errors += 1;
                Err(PipelineError::Beamform(panic_message(payload)))
            }
        }
    }
}

impl Drop for VolumeTicket<'_> {
    fn drop(&mut self) {
        if let Some(pending) = self.pending.take() {
            // Dropped without redemption: join the in-flight tasks
            // (keeping the borrows sound) and discard the frame's
            // results. The join still blocks, so it accrues to
            // `beamform_wait` like a redemption would — abandoning
            // frames must not make the overlap look better than it is.
            let join_start = Instant::now();
            drop(pending);
            if let Some(fin) = self.fin.as_deref_mut() {
                fin.abandoned += 1;
                fin.beamform_wait += join_start.elapsed();
            }
        }
    }
}

/// The acquisition thread: fill each buffer the pipeline sends, return
/// it (or the panic that interrupted it), repeat until the pipeline
/// drops. Source panics are caught here so one bad frame never kills
/// the thread; the `dead` flag is raised on every exit path so the
/// pipeline can never park forever on a gone thread.
fn ingest_loop<S: FrameSource>(mut source: S, link: Arc<IngestLink>) {
    /// Raises `dead` (and wakes the pipeline) even if the loop exits by
    /// unwinding — e.g. through a poisoned mutex.
    struct DeadOnExit(Arc<IngestLink>);
    impl Drop for DeadOnExit {
        fn drop(&mut self) {
            if let Ok(mut st) = self.0.state.lock() {
                st.dead = true;
            }
            self.0.to_pipe.notify_all();
        }
    }
    let _guard = DeadOnExit(Arc::clone(&link));
    loop {
        let mut buffer = {
            let mut st = link.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(buffer) = st.request.take() {
                    break buffer;
                }
                st = link.to_source.wait(st).unwrap();
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| source.next_frame(&mut buffer)));
        let reply = match result {
            Ok(()) => Ok(buffer),
            Err(payload) => Err((buffer, panic_message(payload))),
        };
        let mut st = link.state.lock().unwrap();
        debug_assert!(st.reply.is_none(), "at most one reply in flight");
        st.reply = Some(reply);
        drop(st);
        link.to_pipe.notify_all();
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VolumeLoop;
    use usbf_core::ExactEngine;
    use usbf_geometry::{SystemSpec, Vec3, VoxelIndex};

    fn recorded_frames(spec: &SystemSpec, n: usize) -> Vec<RfFrame> {
        let synth = EchoSynthesizer::new(spec);
        let pulse = Pulse::from_spec(spec);
        (0..n)
            .map(|i| {
                let vox = VoxelIndex::new(2 + i % 4, 3, 5 + i);
                synth.synthesize(&Phantom::point(spec.volume_grid.position(vox)), &pulse)
            })
            .collect()
    }

    #[test]
    fn pipelined_frames_match_serial_volume_loop_bit_for_bit() {
        let spec = SystemSpec::tiny();
        let engine = Arc::new(ExactEngine::new(&spec));
        let frames = recorded_frames(&spec, 3);
        let pool = Arc::new(ThreadPool::new(2));
        let schedule = NappeSchedule::fitted(&spec, 8);
        let mut serial =
            VolumeLoop::with_pool(Beamformer::new(&spec), Arc::clone(&pool), &schedule);
        let reference: Vec<BeamformedVolume> = frames
            .iter()
            .map(|rf| serial.beamform(engine.as_ref(), rf).clone())
            .collect();
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            engine,
            FrameRing::new(frames),
            pool,
            &schedule,
        );
        for round in 0..9 {
            let vol = pipe.next_volume().expect("healthy pipeline");
            assert_eq!(vol, &reference[round % 3], "frame {round}");
        }
        assert_eq!(pipe.frames(), 9);
        assert_eq!(pipe.errors(), 0);
    }

    #[test]
    fn async_submit_matches_synchronous_next_volume() {
        let spec = SystemSpec::tiny();
        let engine = Arc::new(ExactEngine::new(&spec));
        let frames = recorded_frames(&spec, 3);
        let pool = Arc::new(ThreadPool::new(2));
        let schedule = NappeSchedule::fitted(&spec, 8);
        let mut sync_pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            Arc::clone(&engine) as Arc<dyn DelayEngine + Send + Sync>,
            FrameRing::new(frames.clone()),
            Arc::clone(&pool),
            &schedule,
        );
        let reference: Vec<BeamformedVolume> = (0..6)
            .map(|_| sync_pipe.next_volume().expect("healthy").clone())
            .collect();
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            engine,
            FrameRing::new(frames),
            pool,
            &schedule,
        );
        for (round, expect) in reference.iter().enumerate() {
            let ticket = pipe.submit().expect("healthy acquisition");
            // Poll while the frame is in flight; completion must arrive.
            while !ticket.try_wait() {
                std::thread::yield_now();
            }
            let vol = ticket.wait().expect("healthy beamforming");
            assert_eq!(vol, expect, "frame {round}");
        }
        assert_eq!(pipe.frames(), 6);
    }

    #[test]
    fn ticket_exposes_previous_volume_while_in_flight() {
        let spec = SystemSpec::tiny();
        let engine = Arc::new(ExactEngine::new(&spec));
        let frames = recorded_frames(&spec, 2);
        let mut pipe = FramePipeline::new(Beamformer::new(&spec), engine, FrameRing::new(frames));
        assert!(pipe.volume().is_none());
        let first = pipe.next_volume().unwrap().clone();
        assert_eq!(pipe.volume(), Some(&first));
        assert!(pipe.previous_volume().is_none());
        // While frame 2 is in flight, frame 1 is readable from the ticket.
        let ticket = pipe.submit().expect("healthy acquisition");
        assert_eq!(ticket.previous_volume(), Some(&first));
        let second = ticket.wait().unwrap().clone();
        assert_ne!(first, second, "distinct inputs give distinct volumes");
        assert_eq!(pipe.volume(), Some(&second));
        assert_eq!(pipe.previous_volume(), Some(&first));
    }

    #[test]
    fn dropped_ticket_abandons_the_frame_and_the_pipeline_recovers() {
        let spec = SystemSpec::tiny();
        let engine = Arc::new(ExactEngine::new(&spec));
        let frames = recorded_frames(&spec, 1);
        let mut pipe = FramePipeline::new(
            Beamformer::new(&spec),
            engine,
            FrameRing::new(frames.clone()),
        );
        let reference = pipe.next_volume().unwrap().clone();
        drop(pipe.submit().expect("healthy acquisition"));
        assert_eq!(pipe.abandoned(), 1);
        assert_eq!(pipe.frames(), 1);
        // The abandoned frame's buffers and job slot are reusable.
        for _ in 0..3 {
            assert_eq!(pipe.next_volume().expect("recovered"), &reference);
        }
        assert_eq!(pipe.frames(), 4);
        assert_eq!(pipe.stats().abandoned, 1);
    }

    #[test]
    fn synthesized_source_matches_offline_synthesis() {
        let spec = SystemSpec::tiny();
        let engine = ExactEngine::new(&spec);
        let pulse = Pulse::from_spec(&spec);
        let targets: Vec<Vec3> = (0..3)
            .map(|i| spec.volume_grid.position(VoxelIndex::new(4, 4, 6 + 2 * i)))
            .collect();
        let phantoms: Vec<Phantom> = targets.iter().map(|&t| Phantom::point(t)).collect();
        let source =
            SynthesizedFrames::new(EchoSynthesizer::new(&spec), pulse.clone(), phantoms.clone());
        let mut pipe = FramePipeline::new(
            Beamformer::new(&spec),
            Arc::new(ExactEngine::new(&spec)),
            source,
        );
        let mut serial = VolumeLoop::new(Beamformer::new(&spec));
        let synth = EchoSynthesizer::new(&spec);
        for (i, phantom) in phantoms.iter().enumerate() {
            let rf = synth.synthesize(phantom, &pulse);
            let expect = serial.beamform(&engine, &rf).clone();
            let got = pipe.next_volume().expect("healthy pipeline");
            assert_eq!(got, &expect, "frame {i}");
        }
    }

    #[test]
    fn stats_track_frames_and_split_waits() {
        let spec = SystemSpec::tiny();
        let engine = Arc::new(ExactEngine::new(&spec));
        let mut pipe = FramePipeline::new(
            Beamformer::new(&spec),
            engine,
            FrameRing::new(recorded_frames(&spec, 1)),
        );
        for _ in 0..5 {
            pipe.next_volume().unwrap();
        }
        let stats = pipe.stats();
        assert_eq!(stats.frames, 5);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.abandoned, 0);
        assert!(stats.wall > Duration::ZERO);
        assert!(stats.frames_per_second() > 0.0);
        assert!(stats.overlap_fraction() >= 0.0 && stats.overlap_fraction() <= 1.0);
        let _ = stats.mean_acquire_wait();
        let _ = stats.mean_beamform_wait();
    }

    #[test]
    fn slow_source_accrues_acquire_wait_not_beamform_wait() {
        // The controllable slow source: every frame takes ≥ one pause to
        // acquire, so with a tiny beamform load the un-hidden latency
        // must land in acquire_wait — and must NOT be misattributed to
        // beamform_wait (the redemption side), which was the historical
        // lumping bug.
        const PAUSE: Duration = Duration::from_millis(15);
        const FRAMES: u32 = 3;
        let spec = SystemSpec::tiny();
        let engine = Arc::new(ExactEngine::new(&spec));
        let template = recorded_frames(&spec, 1).remove(0);
        let source = move |out: &mut RfFrame| {
            std::thread::sleep(PAUSE);
            out.copy_from(&template);
        };
        let mut pipe = FramePipeline::new(Beamformer::new(&spec), engine, source);
        for _ in 0..FRAMES {
            pipe.next_volume().unwrap();
        }
        let stats = pipe.stats();
        // Every acquisition pauses and nothing hides the first one; with
        // sub-millisecond beamforming at this spec, later ones stay
        // mostly exposed too. One full pause is the robust lower bound.
        assert!(
            stats.acquire_wait >= PAUSE,
            "acquire_wait {:?} must absorb the source pause",
            stats.acquire_wait
        );
        assert!(
            stats.beamform_wait < stats.acquire_wait,
            "redemption wait {:?} must not absorb the source pause {:?}",
            stats.beamform_wait,
            stats.acquire_wait
        );
        assert!(stats.mean_acquire_wait() >= stats.mean_beamform_wait());
    }

    #[test]
    fn caller_side_work_hides_beamform_wait() {
        // If the caller's own work outlasts the in-flight beamforming,
        // redeeming the ticket is nearly free: try_wait turns true on
        // its own and the redemption join has nothing left to drain.
        let spec = SystemSpec::tiny();
        let engine = Arc::new(ExactEngine::new(&spec));
        let frames = recorded_frames(&spec, 1);
        let pool = Arc::new(ThreadPool::new(2));
        let schedule = NappeSchedule::fitted(&spec, 8);
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            engine,
            FrameRing::new(frames),
            pool,
            &schedule,
        );
        pipe.next_volume().unwrap(); // warm-up
        let ticket = pipe.submit().expect("healthy acquisition");
        // "Other work": poll until the workers finish on their own.
        let mut polls = 0u64;
        while !ticket.try_wait() {
            std::thread::sleep(Duration::from_micros(200));
            polls += 1;
            assert!(polls < 500_000, "beamforming never completed");
        }
        let before = pipe_stats_beamform_wait(&ticket);
        ticket.wait().expect("healthy beamforming");
        let stats = pipe.stats();
        assert_eq!(stats.frames, 2);
        // The redemption of an already-complete frame adds (almost) no
        // blocked time; 5 ms is orders of magnitude above the join cost.
        assert!(
            stats.beamform_wait - before < Duration::from_millis(5),
            "redeeming a finished frame blocked for {:?}",
            stats.beamform_wait - before
        );
    }

    /// Reads the accrued beamform_wait through the ticket's FinishState
    /// borrow (test-only peek; the public path is `FramePipeline::stats`).
    fn pipe_stats_beamform_wait(ticket: &VolumeTicket<'_>) -> Duration {
        ticket
            .fin
            .as_deref()
            .map_or(Duration::ZERO, |f| f.beamform_wait)
    }

    /// A stats snapshot with explicit counters, for edge-case pinning.
    fn stats_with(attempts: u64, acquire_wait: Duration, wall: Duration) -> PipelineStats {
        PipelineStats {
            frames: attempts,
            errors: 0,
            abandoned: 0,
            acquire_wait,
            beamform_wait: acquire_wait,
            wall,
            latency: crate::LatencyHistogram::new(),
        }
    }

    #[test]
    fn zero_frame_stats_are_well_defined() {
        // Regression: every derived figure of a fresh pipeline must be a
        // finite, meaningful value — no NaN, no divide-by-zero panic.
        let stats = stats_with(0, Duration::ZERO, Duration::ZERO);
        assert_eq!(stats.frames_per_second(), 0.0);
        assert_eq!(stats.mean_acquire_wait(), Duration::ZERO);
        assert_eq!(stats.mean_beamform_wait(), Duration::ZERO);
        assert_eq!(stats.overlap_fraction(), 1.0);
        // Accrued wait with zero completed attempts (e.g. a snapshot
        // taken after a Disconnected error) must still not divide by 0.
        let stats = stats_with(0, Duration::from_millis(5), Duration::ZERO);
        assert_eq!(stats.mean_acquire_wait(), Duration::ZERO);
    }

    #[test]
    fn mean_waits_survive_attempt_counts_beyond_u32() {
        // Regression: `total / attempts as u32` truncated the count —
        // exactly 2³² attempts truncated to 0 and panicked the division,
        // and anything above inflated the mean.
        let attempts = u64::from(u32::MAX) + 1; // `as u32` would give 0
        let total = Duration::from_secs(40_000);
        let stats = stats_with(attempts, total, Duration::from_secs(1));
        let mean = stats.mean_acquire_wait();
        let expect_nanos = total.as_nanos() / u128::from(attempts);
        assert_eq!(mean.as_nanos(), expect_nanos);
        assert!(mean > Duration::ZERO, "a real accrual must not round away");
        assert_eq!(stats.mean_beamform_wait(), mean);
    }

    #[test]
    fn mean_wait_matches_plain_division_for_small_counts() {
        let stats = stats_with(4, Duration::from_millis(10), Duration::from_secs(1));
        assert_eq!(stats.mean_acquire_wait(), Duration::from_micros(2500));
    }

    #[test]
    fn closure_sources_work() {
        let spec = SystemSpec::tiny();
        let engine = Arc::new(ExactEngine::new(&spec));
        let calls = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let recorder = Arc::clone(&calls);
        let source = move |out: &mut RfFrame| {
            out.fill(0.0);
            recorder.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        };
        let mut pipe = FramePipeline::new(Beamformer::new(&spec), engine, source);
        let vol = pipe.next_volume().unwrap();
        assert_eq!(vol.max_abs(), 0.0);
        assert_eq!(pipe.frames(), 1);
        // The first acquisition plus the overlapped second one.
        assert!(calls.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }
}
