//! Fused B-mode post-processing: IQ demodulation → envelope detection →
//! log compression applied per tile, inside the beamforming pass.
//!
//! The delay-and-sum output oscillates at the carrier; a display consumer
//! wants the log-compressed envelope (B-mode). Running that chain as a
//! separate whole-volume pass re-reads ~megabytes of voxels that were
//! cache-hot moments earlier and re-allocates intermediate buffers every
//! frame. [`PostChain`] instead runs the chain over each tile's staged
//! scanline columns right after the delay-and-sum kernel fills them —
//! while they still sit in the worker's cache and **before** the scatter
//! into the output volume — using per-tile scratch preallocated in
//! [`TileState`](crate::TileState), so warm pipelined frames stay at zero
//! heap allocations.
//!
//! Every arithmetic kernel is one of the `usbf_sim` envelope building
//! blocks ([`demodulate_into`](usbf_sim::demodulate_into),
//! [`envelope_from_iq_into`](usbf_sim::envelope_from_iq_into),
//! [`log_compress_into`](usbf_sim::log_compress_into)); this module only
//! decides *where* they run. Because every stage is local to one axial
//! scanline column — log compression is relative to a **fixed**
//! [`BmodeConfig::reference`] level, never the volume peak — the chain
//! commutes with any tiling of the fan, so the fused per-tile path is
//! bit-identical to applying [`PostChain::apply_volume`] to a raw
//! whole-volume reference.

use crate::BeamformedVolume;
use usbf_geometry::SystemSpec;

/// Parameters of the standard B-mode chain, expressed in the axial
/// sample domain of a beamformed scanline (depth samples, not RF time
/// samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BmodeConfig {
    /// Carrier cycles per depth sample along a beamformed scanline. For
    /// a depth step `dz` this is `2·fc·dz/c` — the factor 2 is the
    /// two-way travel: advancing one depth sample lengthens the echo
    /// path by `2·dz`.
    pub carrier_cycles_per_sample: f64,
    /// Fixed amplitude mapped to 0 dB by the log compression. A fixed
    /// level (rather than the per-volume peak) keeps the transform
    /// pointwise, which is what lets the fused per-tile chain stay
    /// bit-identical to a whole-volume pass.
    pub reference: f64,
    /// Darkest displayed level; envelope values at or below silence
    /// clamp here.
    pub floor_db: f64,
}

impl BmodeConfig {
    /// The chain parameters implied by a system spec: axial carrier rate
    /// from the probe's centre frequency and the grid's depth step,
    /// reference level 1.0, −60 dB floor.
    #[must_use]
    pub fn from_spec(spec: &SystemSpec) -> Self {
        let dz = spec.volume_grid.depth_step();
        BmodeConfig {
            carrier_cycles_per_sample: 2.0 * spec.transducer.center_frequency * dz
                / spec.speed_of_sound,
            reference: 1.0,
            floor_db: -60.0,
        }
    }

    /// Sets the 0 dB reference amplitude.
    #[must_use = "with_reference returns the configured value; dropping it discards the level"]
    pub fn with_reference(mut self, reference: f64) -> Self {
        self.reference = reference;
        self
    }

    /// Sets the dB floor.
    #[must_use = "with_floor_db returns the configured value; dropping it discards the floor"]
    pub fn with_floor_db(mut self, floor_db: f64) -> Self {
        self.floor_db = floor_db;
        self
    }

    /// Angular carrier frequency in radians per depth sample.
    #[inline]
    fn carrier_w(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.carrier_cycles_per_sample
    }

    /// Boxcar length of the envelope low-pass: one axial carrier period,
    /// at least 2 samples.
    #[inline]
    fn period(&self) -> usize {
        usbf_sim::boxcar_period(self.carrier_cycles_per_sample, 1.0)
    }
}

/// One post-processing stage over a single scanline's depth column.
///
/// Stages are data-flow steps, not independent filters: [`IqDemod`]
/// writes the I/Q scratch that [`Envelope`] consumes. The canonical
/// composition is [`PostChain::bmode`]; hand-built chains must keep a
/// demodulation immediately before each envelope stage.
///
/// [`IqDemod`]: PostStage::IqDemod
/// [`Envelope`]: PostStage::Envelope
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PostStage {
    /// Mix the column down to baseband I/Q at `w` radians per depth
    /// sample, into the tile's scratch rows. Leaves the column itself
    /// untouched.
    IqDemod {
        /// Angular carrier frequency, radians per depth sample.
        w: f64,
    },
    /// Boxcar-filter the scratch I/Q over `period` samples and write the
    /// magnitude (the envelope) back over the column.
    Envelope {
        /// Low-pass length in samples (one carrier period).
        period: usize,
    },
    /// In-place `v ← max(20·log10(|v|/reference), floor_db)`.
    LogCompress {
        /// Amplitude mapped to 0 dB.
        reference: f64,
        /// Clamp floor in dB.
        floor_db: f64,
    },
}

impl PostStage {
    /// Applies this stage to one depth column, using `scratch` for the
    /// I/Q intermediates.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` is shorter than the column.
    #[inline]
    pub fn apply(&self, column: &mut [f64], scratch: &mut PostScratch) {
        let n = column.len();
        match *self {
            PostStage::IqDemod { w } => {
                usbf_sim::demodulate_into(column, w, &mut scratch.i, &mut scratch.q);
            }
            PostStage::Envelope { period } => {
                usbf_sim::envelope_from_iq_into(&scratch.i[..n], &scratch.q[..n], period, column);
            }
            PostStage::LogCompress {
                reference,
                floor_db,
            } => {
                usbf_sim::log_compress_into(column, reference, floor_db);
            }
        }
    }
}

/// Preallocated I/Q intermediates for one worker's post-processing: two
/// depth-length rows, allocated once (at [`TileState`](crate::TileState)
/// construction for the warm runtimes) and refilled every column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PostScratch {
    i: Vec<f64>,
    q: Vec<f64>,
}

impl PostScratch {
    /// Allocates scratch for columns of `n_depth` samples.
    #[must_use]
    pub fn new(n_depth: usize) -> Self {
        PostScratch {
            i: vec![0.0; n_depth],
            q: vec![0.0; n_depth],
        }
    }
}

/// An ordered chain of [`PostStage`]s a beamformer applies to every
/// scanline column it produces — empty by default (raw delay-and-sum
/// output).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PostChain {
    stages: Vec<PostStage>,
}

impl PostChain {
    /// The canonical B-mode chain: IQ demodulation → envelope →
    /// log compression.
    #[must_use]
    pub fn bmode(config: BmodeConfig) -> Self {
        PostChain {
            stages: vec![
                PostStage::IqDemod {
                    w: config.carrier_w(),
                },
                PostStage::Envelope {
                    period: config.period(),
                },
                PostStage::LogCompress {
                    reference: config.reference,
                    floor_db: config.floor_db,
                },
            ],
        }
    }

    /// A chain with no stages (the raw-output default).
    #[must_use]
    pub fn empty() -> Self {
        PostChain::default()
    }

    /// Appends a stage.
    #[must_use = "push returns the extended chain; dropping it discards the stage"]
    pub fn push(mut self, stage: PostStage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Whether the chain has no stages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages, in application order.
    pub fn stages(&self) -> &[PostStage] {
        &self.stages
    }

    /// Applies every stage, in order, to one scanline's depth column.
    /// Allocation-free: all intermediates live in `scratch`.
    #[inline]
    pub fn apply_column(&self, column: &mut [f64], scratch: &mut PostScratch) {
        for stage in &self.stages {
            stage.apply(column, scratch);
        }
    }

    /// Applies the chain to a whole beamformed volume, column by column —
    /// the scalar reference the fused per-tile path is bit-identical to.
    pub fn apply_volume(&self, volume: &mut BeamformedVolume) {
        if self.is_empty() {
            return;
        }
        let mut scratch = PostScratch::new(volume.n_depth());
        for column in volume.columns_mut() {
            self.apply_column(column, &mut scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usbf_geometry::VoxelIndex;

    const CCPS: f64 = 0.25; // 4 depth samples per carrier cycle

    fn config() -> BmodeConfig {
        BmodeConfig {
            carrier_cycles_per_sample: CCPS,
            reference: 1.0,
            floor_db: -60.0,
        }
    }

    /// One modulated column through the chain must equal the allocating
    /// `usbf_sim` trace transform with the same parameters.
    #[test]
    fn bmode_column_matches_sim_envelope_blocks() {
        let n = 64;
        let w = 2.0 * std::f64::consts::PI * CCPS;
        let mut column: Vec<f64> = (0..n)
            .map(|k| (w * k as f64).cos() * (0.2 + k as f64 / n as f64))
            .collect();
        let raw = column.clone();
        let chain = PostChain::bmode(config());
        let mut scratch = PostScratch::new(n);
        chain.apply_column(&mut column, &mut scratch);

        // usbf_sim reference: envelope at fc/fs = CCPS, then fixed-ref
        // log compression.
        let mut expect = usbf_sim::envelope(&raw, CCPS, 1.0);
        usbf_sim::log_compress_into(&mut expect, 1.0, -60.0);
        assert_eq!(column, expect, "chain diverges from the sim blocks");
    }

    #[test]
    fn bmode_chain_has_three_stages_in_order() {
        let chain = PostChain::bmode(config());
        assert_eq!(chain.stages().len(), 3);
        assert!(matches!(chain.stages()[0], PostStage::IqDemod { .. }));
        assert!(matches!(chain.stages()[1], PostStage::Envelope { .. }));
        assert!(matches!(chain.stages()[2], PostStage::LogCompress { .. }));
        assert!(!chain.is_empty());
        assert!(PostChain::empty().is_empty());
    }

    #[test]
    fn from_spec_uses_two_way_axial_carrier() {
        let spec = usbf_geometry::SystemSpec::tiny();
        let cfg = BmodeConfig::from_spec(&spec);
        let expect = 2.0 * spec.transducer.center_frequency * spec.volume_grid.depth_step()
            / spec.speed_of_sound;
        assert_eq!(cfg.carrier_cycles_per_sample, expect);
        assert!(cfg.carrier_cycles_per_sample > 0.0);
        let cfg = cfg.with_reference(0.5).with_floor_db(-40.0);
        assert_eq!(cfg.reference, 0.5);
        assert_eq!(cfg.floor_db, -40.0);
    }

    #[test]
    fn apply_volume_is_columnwise() {
        // Two identical columns in different (θ, φ) positions must come
        // out identical: the chain has no cross-column coupling.
        let spec = usbf_geometry::SystemSpec::tiny();
        let mut vol = BeamformedVolume::zeros(&spec);
        let w = 2.0 * std::f64::consts::PI * CCPS;
        for id in 0..spec.volume_grid.n_depth() {
            let v = (w * id as f64).cos();
            vol.set(VoxelIndex::new(1, 2, id), v);
            vol.set(VoxelIndex::new(6, 3, id), v);
        }
        PostChain::bmode(config()).apply_volume(&mut vol);
        for id in 0..spec.volume_grid.n_depth() {
            assert_eq!(
                vol.get(VoxelIndex::new(1, 2, id)),
                vol.get(VoxelIndex::new(6, 3, id))
            );
        }
        // Silent columns clamp to the floor.
        assert_eq!(vol.get(VoxelIndex::new(0, 0, 0)), -60.0);
    }

    #[test]
    fn empty_chain_leaves_volume_untouched() {
        let spec = usbf_geometry::SystemSpec::tiny();
        let mut vol = BeamformedVolume::zeros(&spec);
        vol.set(VoxelIndex::new(3, 3, 3), 7.0);
        let before = vol.clone();
        PostChain::empty().apply_volume(&mut vol);
        assert_eq!(vol, before);
    }
}
