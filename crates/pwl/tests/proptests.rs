//! Property-based bit-identity of the segment-major row evaluator.
//!
//! `eval_row` / `eval_row_tracked` are fast paths over the scalar
//! `eval` / `eval_tracked` datapath: these properties drive them with
//! random tables, random coefficient formats (exercising both the
//! libm-free fast span kernel and the generic fallback), random starting
//! hints and randomly-shaped argument streams — including out-of-domain
//! saturation excursions at both ends — and require the values, the final
//! segment pointer and the tracker telemetry to match the per-element
//! walk exactly.

use proptest::prelude::*;
use usbf_fixed::QFormat;
use usbf_pwl::{LutFormats, PwlApprox, QuantizedPwl, SqrtFn, TrackerStats};

/// Builds a random table + formats from the generated picks. Formats
/// cycle through fitted (fast kernel), fractional-argument and
/// signed-output variants (generic fallback) so every span path runs.
fn random_quantized(lo: f64, span: f64, delta: f64, fmt_pick: usize) -> QuantizedPwl {
    let table = PwlApprox::build(&SqrtFn, (lo, lo + span), delta).expect("valid domain");
    let mut formats = LutFormats::fitted_to(&table);
    match fmt_pick % 3 {
        0 => {}
        1 => {
            // Fractional argument bits: the fast gate refuses these.
            formats.argument = QFormat::unsigned(formats.argument.int_bits(), 2);
        }
        _ => {
            // Signed output: also refused by the fast gate.
            formats.output = QFormat::signed(formats.output.int_bits(), formats.output.frac_bits());
        }
    }
    QuantizedPwl::quantize(&table, formats).expect("fitted formats hold the table")
}

/// A drifting argument stream over (and beyond) the table domain: three
/// scan shapes — a nappe-style slow sweep, a scanline-style sawtooth with
/// restarts, and a jumpy stride — each salted with out-of-domain points
/// below and above the table.
fn random_stream(lo: f64, span: f64, shape: usize, len: usize, salt: usize) -> Vec<f64> {
    let hi = lo + span;
    let mut xs = Vec::with_capacity(len + 6);
    for i in 0..len {
        let t = i as f64 / len.max(2) as f64;
        let x = match shape % 3 {
            0 => lo + span * t * t, // slow nappe drift
            1 => lo + span * ((i % (len / 4 + 1)) as f64 * 4.0 / len as f64), // sawtooth
            _ => lo + span * (((i * 7919 + salt) % len) as f64 / len as f64), // jumpy
        };
        xs.push(x.min(hi));
    }
    // Saturation edges: below the domain (down to 0) and far above it.
    let inject = (salt % len.max(1)).min(xs.len());
    xs.insert(inject, 0.0);
    xs.insert(inject, lo * 0.5);
    xs.push(hi * 4.0);
    xs.push(hi * 1e4);
    xs.push(lo + span * 0.37);
    xs.push(lo);
    xs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eval_row_tracked_matches_scalar_values_pointer_and_telemetry(
        lo in 1.0f64..500.0,
        span in 100.0f64..2.0e6,
        delta in 0.05f64..0.5,
        fmt_pick in 0usize..3,
        shape in 0usize..3,
        len in 16usize..400,
        salt in 0usize..10_000,
        hint_pick in 0usize..1000,
    ) {
        let q = random_quantized(lo, span, delta, fmt_pick);
        let xs = random_stream(lo, span, shape, len, salt);
        let n = q.segment_count();
        let start_hint = hint_pick % (n + 2); // occasionally past the end

        // Per-element scalar reference: values via eval_tracked, steps
        // via the same locate_from chain the hardware pointer walks.
        let mut scalar_hint = start_hint;
        let mut cur = start_hint.min(n - 1);
        let mut expected_stats = TrackerStats {
            evals: xs.len() as u64,
            ..TrackerStats::default()
        };
        let mut expected = Vec::with_capacity(xs.len());
        for &x in &xs {
            let target = q.locate_from(cur, x);
            let moved = (target as i64 - cur as i64).unsigned_abs();
            expected_stats.steps += moved;
            expected_stats.max_step = expected_stats.max_step.max(moved);
            cur = target;
            expected.push(q.eval_tracked(&mut scalar_hint, x));
        }

        let mut row_hint = start_hint;
        let mut got = vec![0.0; xs.len()];
        let stats = q.eval_row_tracked(&mut row_hint, &xs, &mut got);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                g.to_bits(), e.to_bits(),
                "element {} of {}: {} vs {} at x = {}",
                i, xs.len(), g, e, xs[i]
            );
        }
        prop_assert_eq!(row_hint, scalar_hint, "final segment pointer");
        prop_assert_eq!(stats, expected_stats, "tracker telemetry");
        prop_assert_eq!(stats.seeks, 0u64);
    }

    #[test]
    fn eval_row_matches_per_element_eval(
        lo in 1.0f64..500.0,
        span in 100.0f64..2.0e6,
        delta in 0.05f64..0.5,
        fmt_pick in 0usize..3,
        shape in 0usize..3,
        len in 16usize..200,
        salt in 0usize..10_000,
    ) {
        let q = random_quantized(lo, span, delta, fmt_pick);
        let xs = random_stream(lo, span, shape, len, salt);
        let mut got = vec![0.0; xs.len()];
        q.eval_row(&xs, &mut got);
        for (i, (&g, &x)) in got.iter().zip(&xs).enumerate() {
            prop_assert_eq!(
                g.to_bits(), q.eval(x).to_bits(),
                "element {} at x = {}", i, x
            );
        }
    }
}
