//! Piecewise-linear (PWL) minimax approximation of the square root, as used
//! by the paper's TABLEFREE delay architecture (§IV, Fig. 2).
//!
//! The receive-delay datapath must evaluate `√α` (α = squared distance in
//! sample units) once per element per focal point — far too often for an
//! exact square-root block. The paper approximates √ piecewise linearly
//! such that the absolute error stays below a chosen δ (0.25 samples),
//! which takes *about 70 segments* over the system's argument range, and
//! exploits the slow drift of α between consecutive focal points to
//! **track** the active segment instead of searching for it: the evaluator
//! is just one multiplier, one adder and a few coefficient LUTs.
//!
//! This crate provides:
//!
//! * [`Concave`] — the class of functions the minimax construction applies
//!   to, with [`SqrtFn`] (closed-form segment solving) as the primary
//!   instance;
//! * [`PwlApprox`] — the segment table built greedily so each segment's
//!   minimax error is exactly δ (except the last);
//! * [`QuantizedPwl`] — coefficient LUTs quantized to fixed point, the
//!   hardware-faithful evaluation path;
//! * [`TrackingEvaluator`] — the segment-pointer evaluator with step
//!   statistics and an optional strict mode for failure injection.
//!
//! # Example
//!
//! ```
//! use usbf_pwl::{PwlApprox, SqrtFn};
//!
//! // The paper's δ = 0.25 samples over a [64, 16e6] squared-sample range.
//! let pwl = PwlApprox::build(&SqrtFn, (64.0, 16.0e6), 0.25)?;
//! assert!(pwl.segment_count() < 100);
//! let x = 1.234e6;
//! assert!((pwl.eval(x) - x.sqrt()).abs() <= 0.25 + 1e-9);
//! # Ok::<(), usbf_pwl::PwlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod funcs;
mod lut;
mod segment;
mod tracker;

pub use approx::{PwlApprox, PwlError};
pub use funcs::{Concave, SqrtFn};
pub use lut::{LutFormats, QuantizedPwl};
pub use segment::Segment;
pub use tracker::{TrackerStats, TrackingError, TrackingEvaluator};
