//! Segment-pointer tracking: evaluation without search.
//!
//! The key hardware simplification of §IV-B: "the argument of the second
//! square root … only changes very little when the focal points S are
//! computed sequentially … The transitions across the approximating
//! segments being gradual, it is not needed to search for the correct
//! piece each time." A [`TrackingEvaluator`] keeps the current segment
//! index in a register and steps it by comparing the argument against the
//! neighbouring boundaries — no priority encoder, no binary search.

use crate::{PwlApprox, QuantizedPwl};
use std::error::Error;
use std::fmt;

/// Statistics accumulated by a [`TrackingEvaluator`] — used to validate
/// the "gradual transitions" claim for both scan orders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackerStats {
    /// Number of evaluations performed.
    pub evals: u64,
    /// Total segment-pointer steps taken.
    pub steps: u64,
    /// Largest number of steps needed by any single evaluation.
    pub max_step: u64,
    /// Number of explicit `seek` (search) operations.
    pub seeks: u64,
}

impl TrackerStats {
    /// Mean steps per evaluation.
    pub fn mean_steps(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.steps as f64 / self.evals as f64
        }
    }
}

/// Error raised in strict mode when one evaluation would need to move the
/// segment pointer farther than the configured hardware allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackingError {
    /// Segment index before the evaluation.
    pub from: usize,
    /// Segment index the argument actually belongs to.
    pub to: usize,
    /// Maximum per-evaluation step the tracker was configured with.
    pub allowed: u64,
}

impl fmt::Display for TrackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segment jump {} → {} exceeds the {}-step tracking budget",
            self.from, self.to, self.allowed
        )
    }
}

impl Error for TrackingError {}

/// A stateful PWL evaluator that *tracks* the active segment.
///
/// Optionally evaluates through a [`QuantizedPwl`] for bit-true fixed-point
/// results, and optionally enforces a per-evaluation step budget
/// (`max_step`) to emulate a hardware design that can only move the
/// pointer by ±k per cycle.
///
/// ```
/// use usbf_pwl::{PwlApprox, SqrtFn, TrackingEvaluator};
/// let table = PwlApprox::build(&SqrtFn, (64.0, 1e6), 0.25)?;
/// let mut tr = TrackingEvaluator::new(&table);
/// // A slowly drifting argument, as produced by a nappe sweep:
/// let mut x = 100.0;
/// while x < 9.9e5 {
///     let y = tr.eval(x)?;
///     assert!((y - x.sqrt()).abs() <= 0.25 + 1e-9);
///     x *= 1.01;
/// }
/// assert!(tr.stats().max_step <= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TrackingEvaluator<'a> {
    table: &'a PwlApprox,
    quant: Option<&'a QuantizedPwl>,
    idx: usize,
    max_step: Option<u64>,
    stats: TrackerStats,
}

impl<'a> TrackingEvaluator<'a> {
    /// Creates a tracker over a float-coefficient table, starting at the
    /// first segment.
    pub fn new(table: &'a PwlApprox) -> Self {
        assert!(table.segment_count() > 0, "empty PWL table");
        TrackingEvaluator {
            table,
            quant: None,
            idx: 0,
            max_step: None,
            stats: TrackerStats::default(),
        }
    }

    /// Creates a tracker that evaluates through quantized coefficient LUTs
    /// (bit-true datapath).
    ///
    /// # Panics
    ///
    /// Panics if `quant` has a different segment count than `table`.
    pub fn with_quantized(table: &'a PwlApprox, quant: &'a QuantizedPwl) -> Self {
        assert_eq!(
            table.segment_count(),
            quant.segment_count(),
            "quantized table must mirror the float table"
        );
        TrackingEvaluator {
            table,
            quant: Some(quant),
            idx: 0,
            max_step: None,
            stats: TrackerStats::default(),
        }
    }

    /// Restricts every evaluation to at most `k` pointer steps (strict
    /// hardware emulation; evaluations needing more return
    /// [`TrackingError`]).
    pub fn with_max_step(mut self, k: u64) -> Self {
        self.max_step = Some(k);
        self
    }

    /// Current segment index.
    #[inline]
    pub fn segment_index(&self) -> usize {
        self.idx
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> TrackerStats {
        self.stats
    }

    /// Clears the statistics (keeps the pointer).
    pub fn reset_stats(&mut self) {
        self.stats = TrackerStats::default();
    }

    /// Repositions the pointer by binary search — the operation a
    /// scanline/nappe *restart* performs (counted separately in the
    /// stats).
    pub fn seek(&mut self, x: f64) {
        self.idx = self.table.locate(x);
        self.stats.seeks += 1;
    }

    /// Evaluates at `x`, stepping the segment pointer as needed.
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`TrackingError`] if more than `max_step`
    /// steps would be required (the pointer is still moved, mimicking a
    /// design that would produce wrong values for the overflow cycles).
    pub fn eval(&mut self, x: f64) -> Result<f64, TrackingError> {
        let target = self.table.locate(x);
        let moved = (target as i64 - self.idx as i64).unsigned_abs();
        let from = self.idx;
        self.idx = target;
        self.stats.evals += 1;
        self.stats.steps += moved;
        self.stats.max_step = self.stats.max_step.max(moved);
        if let Some(k) = self.max_step {
            if moved > k {
                return Err(TrackingError {
                    from,
                    to: target,
                    allowed: k,
                });
            }
        }
        Ok(match self.quant {
            Some(q) => q.eval_at(target, x),
            None => self.table.segments()[target].eval(x),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LutFormats, SqrtFn};

    fn table() -> PwlApprox {
        PwlApprox::build(&SqrtFn, (64.0, 1e6), 0.25).unwrap()
    }

    #[test]
    fn tracked_eval_equals_direct_eval() {
        let t = table();
        let mut tr = TrackingEvaluator::new(&t);
        for i in 0..5000 {
            let x = 64.0 + (1e6 - 64.0) * i as f64 / 4999.0;
            assert_eq!(tr.eval(x).unwrap(), t.eval(x), "x = {x}");
        }
    }

    #[test]
    fn slow_drift_steps_at_most_one() {
        let t = table();
        let mut tr = TrackingEvaluator::new(&t);
        let mut x = 64.0;
        while x < 1e6 {
            tr.eval(x).unwrap();
            x += 50.0; // much finer than any segment width
        }
        assert!(
            tr.stats().max_step <= 1,
            "max_step = {}",
            tr.stats().max_step
        );
        assert!(tr.stats().mean_steps() < 1.0);
    }

    #[test]
    fn strict_mode_flags_large_jumps() {
        let t = table();
        let mut tr = TrackingEvaluator::new(&t).with_max_step(1);
        tr.eval(100.0).unwrap();
        let e = tr.eval(9e5).unwrap_err();
        assert!(e.to_string().contains("exceeds"));
        assert!(e.to > e.from + 1);
        // Pointer still lands on the right segment afterwards.
        assert_eq!(tr.segment_index(), t.locate(9e5));
    }

    #[test]
    fn seek_resets_pointer_without_step_count() {
        let t = table();
        let mut tr = TrackingEvaluator::new(&t).with_max_step(1);
        tr.eval(100.0).unwrap();
        tr.seek(9e5);
        assert!(tr.eval(9e5).is_ok());
        assert_eq!(tr.stats().seeks, 1);
    }

    #[test]
    fn reverse_drift_tracks_down() {
        let t = table();
        let mut tr = TrackingEvaluator::new(&t);
        tr.seek(9.9e5);
        let mut x = 9.9e5;
        while x > 100.0 {
            tr.eval(x).unwrap();
            x -= 100.0;
        }
        assert_eq!(tr.segment_index(), t.locate(100.0));
        assert!(tr.stats().max_step <= 1);
    }

    #[test]
    fn quantized_tracker_matches_quantized_direct() {
        let t = table();
        let q = QuantizedPwl::quantize(&t, LutFormats::paper_default()).unwrap();
        let mut tr = TrackingEvaluator::with_quantized(&t, &q);
        for i in 0..2000 {
            let x = 64.0 + (1e6 - 64.0) * i as f64 / 1999.0;
            assert_eq!(tr.eval(x).unwrap(), q.eval(x), "x = {x}");
        }
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let t = table();
        let mut tr = TrackingEvaluator::new(&t);
        tr.eval(100.0).unwrap();
        tr.eval(5e5).unwrap();
        assert_eq!(tr.stats().evals, 2);
        assert!(tr.stats().steps > 0);
        tr.reset_stats();
        assert_eq!(tr.stats(), TrackerStats::default());
    }

    #[test]
    fn mean_steps_empty_is_zero() {
        assert_eq!(TrackerStats::default().mean_steps(), 0.0);
    }
}
