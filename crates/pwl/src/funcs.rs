//! The class of functions the minimax PWL construction handles.

/// A strictly concave, strictly increasing, twice-differentiable function.
///
/// For such a function the best (minimax) linear approximation on `[a, b]`
/// has a closed structure: the chord lies below the curve, the largest gap
/// occurs at the unique `x*` where `f′(x*)` equals the chord slope, and the
/// minimax line is the chord raised by half that gap, with error exactly
/// `gap/2`. The greedy "extend until the error hits δ" construction is then
/// optimal up to one segment.
///
/// Implementors must guarantee concavity and monotonicity on the domain
/// they are used with; [`SqrtFn`] is the instance the paper uses.
pub trait Concave {
    /// The function value `f(x)`.
    fn eval(&self, x: f64) -> f64;

    /// The derivative `f′(x)`.
    fn derivative(&self, x: f64) -> f64;

    /// Inverse of the derivative: the `x` with `f′(x) = m`. The default
    /// implementation bisects on `[lo, hi]` (valid because `f′` is strictly
    /// decreasing for a strictly concave `f`).
    fn inv_derivative(&self, m: f64, lo: f64, hi: f64) -> f64 {
        let (mut lo, mut hi) = (lo, hi);
        for _ in 0..128 {
            let mid = 0.5 * (lo + hi);
            if self.derivative(mid) > m {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= f64::EPSILON * hi.abs() {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// The minimax error of a single linear segment on `[a, b]`:
    /// half the largest chord-to-curve gap.
    fn segment_error(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let m = (self.eval(b) - self.eval(a)) / (b - a);
        let xs = self.inv_derivative(m, a, b);
        0.5 * (self.eval(xs) - (self.eval(a) + m * (xs - a)))
    }

    /// Largest `b ∈ (a, hi]` such that `segment_error(a, b) ≤ delta`.
    ///
    /// The default bisects on the (monotone in `b`) segment error;
    /// implementors with a closed form (like [`SqrtFn`]) should override
    /// for exactness and speed.
    fn segment_end(&self, a: f64, delta: f64, hi: f64) -> f64 {
        if self.segment_error(a, hi) <= delta {
            return hi;
        }
        let (mut lo, mut up) = (a, hi);
        for _ in 0..128 {
            let mid = 0.5 * (lo + up);
            if self.segment_error(a, mid) <= delta {
                lo = mid;
            } else {
                up = mid;
            }
            if up - lo <= f64::EPSILON * up.abs().max(1.0) {
                break;
            }
        }
        lo
    }
}

/// The square-root function — the paper's delay kernel (Eq. 3).
///
/// Closed forms (write `s = √a`, `t = √b`):
///
/// * chord slope `m = 1/(s + t)`,
/// * gap maximum at `x* = ((s + t)/2)²` with gap `(t − s)²/(4(s + t))`,
/// * minimax segment error (half the gap) `e(a, b) = (t − s)²/(8(s + t))`,
/// * segment end for error δ: solving `(t − s)² = 8δ(s + t)` gives
///   `t = s + 4δ + 4√(δ(s + δ))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SqrtFn;

impl Concave for SqrtFn {
    #[inline]
    fn eval(&self, x: f64) -> f64 {
        x.sqrt()
    }

    #[inline]
    fn derivative(&self, x: f64) -> f64 {
        0.5 / x.sqrt()
    }

    fn inv_derivative(&self, m: f64, _lo: f64, _hi: f64) -> f64 {
        // f'(x) = 1/(2√x) = m  →  x = 1/(4m²)
        1.0 / (4.0 * m * m)
    }

    fn segment_error(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let s = a.sqrt();
        let t = b.sqrt();
        // gap = (t−s)²/(4(s+t)); the minimax error is half the gap.
        (t - s) * (t - s) / (8.0 * (s + t))
    }

    fn segment_end(&self, a: f64, delta: f64, hi: f64) -> f64 {
        let s = a.sqrt();
        let t = s + 4.0 * delta + 4.0 * (delta * (s + delta)).sqrt();
        (t * t).min(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_closed_form_error_matches_generic_bisection() {
        struct GenericSqrt;
        impl Concave for GenericSqrt {
            fn eval(&self, x: f64) -> f64 {
                x.sqrt()
            }
            fn derivative(&self, x: f64) -> f64 {
                0.5 / x.sqrt()
            }
        }
        for &(a, b) in &[(1.0, 4.0), (100.0, 2500.0), (1e4, 9e6)] {
            let exact = SqrtFn.segment_error(a, b);
            let generic = GenericSqrt.segment_error(a, b);
            assert!(
                (exact - generic).abs() <= 1e-9 * exact.max(1e-12),
                "a={a} b={b}: {exact} vs {generic}"
            );
        }
    }

    #[test]
    fn sqrt_closed_form_end_matches_generic_bisection() {
        struct GenericSqrt;
        impl Concave for GenericSqrt {
            fn eval(&self, x: f64) -> f64 {
                x.sqrt()
            }
            fn derivative(&self, x: f64) -> f64 {
                0.5 / x.sqrt()
            }
        }
        for &a in &[1.0, 64.0, 1e4, 1e6] {
            let delta = 0.25;
            let exact = SqrtFn.segment_end(a, delta, 1e9);
            let generic = GenericSqrt.segment_end(a, delta, 1e9);
            assert!(
                ((exact - generic) / exact).abs() < 1e-6,
                "a={a}: {exact} vs {generic}"
            );
        }
    }

    #[test]
    fn segment_end_gives_exact_delta_error() {
        for &a in &[4.0, 100.0, 5e5] {
            for &delta in &[0.5, 0.25, 0.0625] {
                let b = SqrtFn.segment_end(a, delta, f64::INFINITY);
                let e = SqrtFn.segment_error(a, b);
                assert!((e - delta).abs() < 1e-9, "a={a} δ={delta}: e={e}");
            }
        }
    }

    #[test]
    fn segment_end_clamps_to_hi() {
        let b = SqrtFn.segment_end(4.0, 0.25, 5.0);
        assert_eq!(b, 5.0);
    }

    #[test]
    fn error_is_zero_on_degenerate_interval() {
        assert_eq!(SqrtFn.segment_error(9.0, 9.0), 0.0);
        assert_eq!(SqrtFn.segment_error(9.0, 4.0), 0.0);
    }

    #[test]
    fn gap_maximum_is_interior() {
        let (a, b) = (16.0, 400.0);
        let m = (SqrtFn.eval(b) - SqrtFn.eval(a)) / (b - a);
        let xs = SqrtFn.inv_derivative(m, a, b);
        assert!(xs > a && xs < b);
        // x* = ((s+t)/2)²
        let expect = ((a.sqrt() + b.sqrt()) / 2.0).powi(2);
        assert!((xs - expect).abs() < 1e-9);
    }
}
