//! One linear segment of a PWL approximation.

use std::fmt;

/// A linear piece `y = slope·x + intercept` valid on `[x0, x1)` (the last
/// segment of a table is closed on the right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Inclusive left edge of the segment's domain.
    pub x0: f64,
    /// Right edge of the segment's domain.
    pub x1: f64,
    /// Line slope (the `c1` coefficient LUT entry of Fig. 2a).
    pub slope: f64,
    /// Line intercept (the `c0` coefficient LUT entry of Fig. 2a).
    pub intercept: f64,
}

impl Segment {
    /// Evaluates the line at `x` (no domain check — callers pick the
    /// segment).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Whether `x` lies inside this segment's domain, treating the right
    /// edge as exclusive.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.x0 && x < self.x1
    }

    /// Width of the segment's domain.
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4}, {:.4}): y = {:.6e}·x + {:.6}",
            self.x0, self.x1, self.slope, self.intercept
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_affine() {
        let s = Segment {
            x0: 0.0,
            x1: 10.0,
            slope: 2.0,
            intercept: 1.0,
        };
        assert_eq!(s.eval(0.0), 1.0);
        assert_eq!(s.eval(4.5), 10.0);
    }

    #[test]
    fn contains_half_open() {
        let s = Segment {
            x0: 1.0,
            x1: 2.0,
            slope: 0.0,
            intercept: 0.0,
        };
        assert!(s.contains(1.0));
        assert!(s.contains(1.999));
        assert!(!s.contains(2.0));
        assert!(!s.contains(0.999));
    }

    #[test]
    fn width() {
        let s = Segment {
            x0: 3.0,
            x1: 7.5,
            slope: 0.0,
            intercept: 0.0,
        };
        assert_eq!(s.width(), 4.5);
    }

    #[test]
    fn display_nonempty() {
        let s = Segment {
            x0: 0.0,
            x1: 1.0,
            slope: 1.0,
            intercept: 0.0,
        };
        assert!(format!("{s}").contains("y ="));
    }
}
