//! Greedy minimax PWL table construction.

use crate::{Concave, Segment};
use std::error::Error;
use std::fmt;

/// Errors from PWL construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PwlError {
    /// The requested domain is empty or inverted.
    EmptyDomain {
        /// Requested lower edge.
        lo: f64,
        /// Requested upper edge.
        hi: f64,
    },
    /// δ must be positive and finite.
    InvalidDelta(f64),
    /// Construction exceeded the segment budget (guards against
    /// pathological functions/domains, e.g. a domain touching a
    /// curvature singularity).
    TooManySegments {
        /// The configured budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for PwlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PwlError::EmptyDomain { lo, hi } => write!(f, "empty PWL domain [{lo}, {hi}]"),
            PwlError::InvalidDelta(d) => write!(f, "invalid PWL error bound delta = {d}"),
            PwlError::TooManySegments { budget } => {
                write!(f, "PWL construction exceeded {budget} segments")
            }
        }
    }
}

impl Error for PwlError {}

/// A complete PWL approximation: contiguous segments covering a domain,
/// each with minimax error ≤ δ.
///
/// Built by [`PwlApprox::build`]; evaluated either by binary search
/// ([`PwlApprox::eval`]) or by a hardware-style
/// [`TrackingEvaluator`](crate::TrackingEvaluator).
#[derive(Debug, Clone, PartialEq)]
pub struct PwlApprox {
    segments: Vec<Segment>,
    delta: f64,
}

/// Default cap on segment counts; the paper's tables have ~70 segments, so
/// 100 000 means something is badly wrong (domain touching a singularity).
const DEFAULT_SEGMENT_BUDGET: usize = 100_000;

impl PwlApprox {
    /// Builds the approximation of `f` over `domain = (lo, hi)` with
    /// maximum absolute error `delta`.
    ///
    /// Segments are grown greedily from the left: each extends as far as
    /// the minimax error allows, so every segment except the last has error
    /// exactly δ. For concave `f` this greedy construction uses the
    /// fewest possible segments up to one.
    ///
    /// # Errors
    ///
    /// [`PwlError::EmptyDomain`] / [`PwlError::InvalidDelta`] on bad
    /// inputs, [`PwlError::TooManySegments`] if more than 100 000 segments
    /// would be needed.
    pub fn build(f: &impl Concave, domain: (f64, f64), delta: f64) -> Result<Self, PwlError> {
        let (lo, hi) = domain;
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(PwlError::EmptyDomain { lo, hi });
        }
        if !delta.is_finite() || delta <= 0.0 {
            return Err(PwlError::InvalidDelta(delta));
        }
        let mut segments = Vec::new();
        let mut a = lo;
        while a < hi {
            if segments.len() >= DEFAULT_SEGMENT_BUDGET {
                return Err(PwlError::TooManySegments {
                    budget: DEFAULT_SEGMENT_BUDGET,
                });
            }
            let mut b = f.segment_end(a, delta, hi);
            let progressed = b > a; // NaN also fails this, triggering the fallback
            if !progressed {
                // Defensive progress guarantee for near-degenerate cases.
                b = (a + (hi - a) * 1e-6)
                    .min(hi)
                    .max(a + f64::EPSILON * a.abs().max(1.0));
            }
            let fa = f.eval(a);
            let fb = f.eval(b);
            let m = (fb - fa) / (b - a);
            let err = f.segment_error(a, b);
            // Minimax line: chord raised by half the gap (gap = 2·err).
            let intercept = fa - m * a + err;
            segments.push(Segment {
                x0: a,
                x1: b,
                slope: m,
                intercept,
            });
            a = b;
        }
        Ok(PwlApprox { segments, delta })
    }

    /// The error bound δ the table was built for.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of segments (the coefficient-LUT depth; ~70 for the paper's
    /// δ = 0.25 over the system's squared-distance range).
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segment table.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Domain covered by the table.
    pub fn domain(&self) -> (f64, f64) {
        (
            self.segments.first().map_or(0.0, |s| s.x0),
            self.segments.last().map_or(0.0, |s| s.x1),
        )
    }

    /// Index of the segment containing `x` (clamped to the first/last
    /// segment outside the domain), found by binary search — the
    /// "random access" path a hardware design avoids.
    pub fn locate(&self, x: f64) -> usize {
        match self
            .segments
            .binary_search_by(|s| s.x0.partial_cmp(&x).expect("segment edges are finite"))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Evaluates the approximation at `x` via binary search.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.segments[self.locate(x)].eval(x)
    }

    /// Exact maximum error of the table against `f` (uses the per-segment
    /// minimax closed form, not sampling).
    pub fn max_error_exact(&self, f: &impl Concave) -> f64 {
        self.segments
            .iter()
            .map(|s| f.segment_error(s.x0, s.x1))
            .fold(0.0, f64::max)
    }

    /// Mean absolute error of the table against `f`, sampled on `n`
    /// uniformly spaced points (the paper quotes ≈ 0.204 · δ/0.25 for one
    /// square-root evaluation).
    pub fn mean_abs_error_sampled(&self, f: &impl Concave, n: usize) -> f64 {
        assert!(n >= 2, "need at least two sample points");
        let (lo, hi) = self.domain();
        let mut sum = 0.0;
        for i in 0..n {
            let x = lo + (hi - lo) * i as f64 / (n as f64 - 1.0);
            sum += (self.eval(x) - f.eval(x)).abs();
        }
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SqrtFn;
    use proptest::prelude::*;

    #[test]
    fn build_covers_domain_contiguously() {
        let p = PwlApprox::build(&SqrtFn, (16.0, 1e6), 0.25).unwrap();
        let segs = p.segments();
        assert_eq!(segs.first().unwrap().x0, 16.0);
        assert!((segs.last().unwrap().x1 - 1e6).abs() < 1e-6);
        for w in segs.windows(2) {
            assert_eq!(w[0].x1, w[1].x0, "segments must be contiguous");
        }
    }

    #[test]
    fn every_segment_error_at_most_delta() {
        let p = PwlApprox::build(&SqrtFn, (16.0, 1e6), 0.25).unwrap();
        assert!(p.max_error_exact(&SqrtFn) <= 0.25 + 1e-12);
    }

    #[test]
    fn interior_segments_saturate_delta() {
        let p = PwlApprox::build(&SqrtFn, (16.0, 1e6), 0.25).unwrap();
        for s in &p.segments()[..p.segment_count() - 1] {
            let e = SqrtFn.segment_error(s.x0, s.x1);
            assert!(
                (e - 0.25).abs() < 1e-9,
                "greedy segments hit δ exactly, got {e}"
            );
        }
    }

    #[test]
    fn smaller_delta_needs_more_segments() {
        let coarse = PwlApprox::build(&SqrtFn, (16.0, 1e6), 0.5).unwrap();
        let fine = PwlApprox::build(&SqrtFn, (16.0, 1e6), 0.125).unwrap();
        assert!(fine.segment_count() > coarse.segment_count());
        // Asymptotically N ∝ 1/√δ: quartering δ should double N.
        let ratio = fine.segment_count() as f64 / coarse.segment_count() as f64;
        assert!(ratio > 1.6 && ratio < 2.4, "ratio = {ratio}");
    }

    #[test]
    fn eval_matches_sqrt_within_delta() {
        let p = PwlApprox::build(&SqrtFn, (64.0, 4e6), 0.25).unwrap();
        for i in 0..10_000 {
            let x = 64.0 + (4e6 - 64.0) * i as f64 / 9999.0;
            let err = (p.eval(x) - x.sqrt()).abs();
            assert!(err <= 0.25 + 1e-9, "x={x}: err={err}");
        }
    }

    #[test]
    fn locate_is_consistent_with_contains() {
        let p = PwlApprox::build(&SqrtFn, (16.0, 1e5), 0.25).unwrap();
        for i in 0..1000 {
            let x = 16.0 + (1e5 - 16.0) * i as f64 / 999.0;
            let idx = p.locate(x);
            let s = p.segments()[idx];
            assert!(x >= s.x0 && (x <= s.x1), "x={x} seg={s}");
        }
    }

    #[test]
    fn locate_clamps_outside_domain() {
        let p = PwlApprox::build(&SqrtFn, (16.0, 1e5), 0.25).unwrap();
        assert_eq!(p.locate(0.0), 0);
        assert_eq!(p.locate(1e9), p.segment_count() - 1);
    }

    #[test]
    fn mean_error_about_two_thirds_of_delta_for_sqrt() {
        // For the minimax parabola-like error profile, the mean |error| is
        // ≈ 0.66·δ over each segment; the paper quotes 0.204 for δ = 0.25
        // (≈ 0.8·δ) for its slightly different profile. We check the same
        // ballpark.
        let p = PwlApprox::build(&SqrtFn, (64.0, 16e6), 0.25).unwrap();
        let mean = p.mean_abs_error_sampled(&SqrtFn, 200_001);
        assert!(mean > 0.1 && mean < 0.25, "mean = {mean}");
    }

    #[test]
    fn empty_domain_rejected() {
        assert!(matches!(
            PwlApprox::build(&SqrtFn, (10.0, 10.0), 0.25),
            Err(PwlError::EmptyDomain { .. })
        ));
        assert!(matches!(
            PwlApprox::build(&SqrtFn, (10.0, 1.0), 0.25),
            Err(PwlError::EmptyDomain { .. })
        ));
    }

    #[test]
    fn invalid_delta_rejected() {
        assert!(matches!(
            PwlApprox::build(&SqrtFn, (1.0, 10.0), 0.0),
            Err(PwlError::InvalidDelta(_))
        ));
        assert!(matches!(
            PwlApprox::build(&SqrtFn, (1.0, 10.0), f64::NAN),
            Err(PwlError::InvalidDelta(_))
        ));
    }

    #[test]
    fn error_display_nonempty() {
        let e = PwlError::InvalidDelta(0.0);
        assert!(!e.to_string().is_empty());
    }

    proptest! {
        #[test]
        fn prop_error_bounded_everywhere(
            lo in 1.0f64..1e4,
            span in 10.0f64..1e6,
            delta in 0.01f64..1.0,
            frac in 0.0f64..1.0,
        ) {
            let p = PwlApprox::build(&SqrtFn, (lo, lo + span), delta).unwrap();
            let x = lo + span * frac;
            let err = (p.eval(x) - x.sqrt()).abs();
            prop_assert!(err <= delta + 1e-9, "x={} err={}", x, err);
        }

        #[test]
        fn prop_approximation_is_monotone(
            lo in 1.0f64..1e3,
            span in 10.0f64..1e5,
            a in 0.0f64..1.0,
            b in 0.0f64..1.0,
        ) {
            let p = PwlApprox::build(&SqrtFn, (lo, lo + span), 0.25).unwrap();
            let (xa, xb) = (lo + span * a.min(b), lo + span * a.max(b));
            prop_assert!(p.eval(xa) <= p.eval(xb) + 1e-12);
        }

        #[test]
        fn prop_segments_partition_domain(
            lo in 1.0f64..1e3,
            span in 10.0f64..1e5,
            delta in 0.05f64..1.0,
        ) {
            let p = PwlApprox::build(&SqrtFn, (lo, lo + span), delta).unwrap();
            let segs = p.segments();
            prop_assert_eq!(segs[0].x0, lo);
            for w in segs.windows(2) {
                prop_assert_eq!(w[0].x1, w[1].x0);
            }
            prop_assert!((segs[segs.len()-1].x1 - (lo + span)).abs() < 1e-9 * (lo + span));
        }
    }
}
