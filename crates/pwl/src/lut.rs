//! Fixed-point coefficient LUTs: the hardware-faithful PWL evaluation.
//!
//! Fig. 2(a) of the paper stores per-segment `c1` (slope) and `c0`
//! (intercept) coefficients in small LUTs; the datapath computes
//! `√α ≈ c1·α + c0` with one multiplier and one adder. This module
//! quantizes a [`PwlApprox`] into such LUTs and models the datapath
//! arithmetic bit-exactly.

use crate::{Concave, PwlApprox, SqrtFn};
use usbf_fixed::{Fixed, FixedError, QFormat, RoundingMode};

/// Fixed-point formats of the PWL datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutFormats {
    /// Format of the `c1` slope LUT entries.
    pub slope: QFormat,
    /// Format of the `c0` intercept LUT entries.
    pub intercept: QFormat,
    /// Format of the argument register (squared distance in samples²).
    pub argument: QFormat,
    /// Format of the multiplier output register.
    pub accumulator: QFormat,
    /// Format of the result register (delay in samples).
    pub output: QFormat,
}

impl LutFormats {
    /// The defaults used for the paper-scale system: 30 fractional slope
    /// bits (the product `α·Δc1` stays ≪ δ for α up to ~2²⁵), signed 14.6
    /// intercepts, integer 25-bit arguments, and a u13.5 output matching
    /// the TABLESTEER reference format.
    pub fn paper_default() -> Self {
        LutFormats {
            slope: QFormat::unsigned(0, 30),
            intercept: QFormat::signed(14, 6),
            argument: QFormat::unsigned(25, 0),
            accumulator: QFormat::signed(15, 8),
            output: QFormat::unsigned(13, 5),
        }
    }

    /// Picks formats that fit a given table: widens the slope/intercept
    /// integer parts to hold the table's extremes while keeping the
    /// default fractional precision.
    pub fn fitted_to(table: &PwlApprox) -> Self {
        let mut max_slope = 0.0f64;
        let mut max_icept = 0.0f64;
        for s in table.segments() {
            max_slope = max_slope.max(s.slope.abs());
            max_icept = max_icept.max(s.intercept.abs());
        }
        let slope_int = if max_slope < 1.0 {
            0
        } else {
            (max_slope.log2().floor() as u32) + 1
        };
        let icept_int = (max_icept.max(1.0).log2().floor() as u32) + 2;
        let (_, hi) = table.domain();
        let arg_int = (hi.max(1.0).log2().floor() as u32) + 1;
        let out_max = hi.sqrt();
        let out_int = (out_max.max(1.0).log2().floor() as u32) + 1;
        LutFormats {
            slope: QFormat::unsigned(slope_int, 30),
            intercept: QFormat::signed(icept_int, 6),
            argument: QFormat::unsigned(arg_int, 0),
            accumulator: QFormat::signed(out_int + 2, 8),
            output: QFormat::unsigned(out_int, 5),
        }
    }
}

/// A PWL table with coefficients quantized to fixed point, evaluated with
/// the bit-true datapath of Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPwl {
    boundaries: Vec<f64>,
    slopes: Vec<Fixed>,
    intercepts: Vec<Fixed>,
    formats: LutFormats,
}

impl QuantizedPwl {
    /// Quantizes every segment of `table` into the given formats.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`FixedError`] if any coefficient overflows
    /// its format.
    pub fn quantize(table: &PwlApprox, formats: LutFormats) -> Result<Self, FixedError> {
        let mut boundaries = Vec::with_capacity(table.segment_count() + 1);
        let mut slopes = Vec::with_capacity(table.segment_count());
        let mut intercepts = Vec::with_capacity(table.segment_count());
        for s in table.segments() {
            boundaries.push(s.x0);
            slopes.push(Fixed::from_f64(
                s.slope,
                formats.slope,
                RoundingMode::Nearest,
            )?);
            intercepts.push(Fixed::from_f64(
                s.intercept,
                formats.intercept,
                RoundingMode::Nearest,
            )?);
        }
        boundaries.push(table.domain().1);
        Ok(QuantizedPwl {
            boundaries,
            slopes,
            intercepts,
            formats,
        })
    }

    /// Number of segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.slopes.len()
    }

    /// The datapath formats.
    #[inline]
    pub fn formats(&self) -> &LutFormats {
        &self.formats
    }

    /// Segment index containing `x` (clamped at the ends), by binary
    /// search.
    pub fn locate(&self, x: f64) -> usize {
        let n = self.segment_count();
        match self.boundaries[..n]
            .binary_search_by(|b| b.partial_cmp(&x).expect("finite boundaries"))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Bit-true evaluation using segment `idx`: quantize α, one fixed-point
    /// multiply into the accumulator, one full-width add of `c0`, then a
    /// final rounding into the output register. Saturates (as hardware
    /// registers do) instead of failing.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn eval_at(&self, idx: usize, x: f64) -> f64 {
        let arg = Fixed::saturating_from_f64(x, self.formats.argument, RoundingMode::Nearest);
        let prod = match arg.mul_into(
            self.slopes[idx],
            self.formats.accumulator,
            RoundingMode::HalfUp,
        ) {
            Ok(p) => p,
            Err(_) => Fixed::saturating_from_f64(
                arg.to_f64() * self.slopes[idx].to_f64(),
                self.formats.accumulator,
                RoundingMode::HalfUp,
            ),
        };
        let sum = prod.wide_add(self.intercepts[idx]);
        Fixed::saturating_from_f64(sum.to_f64(), self.formats.output, RoundingMode::HalfUp).to_f64()
    }

    /// Locate + evaluate.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.eval_at(self.locate(x), x)
    }

    /// Segment index containing `x`, found by walking from `hint` — the
    /// §IV-B tracking policy ("transitions across segments are gradual, so
    /// no search is needed"). Returns exactly what [`QuantizedPwl::locate`]
    /// returns, in O(steps) instead of O(log n) when arguments drift
    /// slowly, as a nappe-major sweep produces.
    pub fn locate_from(&self, hint: usize, x: f64) -> usize {
        let n = self.segment_count();
        let mut i = hint.min(n - 1);
        while i > 0 && x < self.boundaries[i] {
            i -= 1;
        }
        while i + 1 < n && x >= self.boundaries[i + 1] {
            i += 1;
        }
        i
    }

    /// Tracked locate + evaluate: walks the segment pointer from `*hint`,
    /// stores the found segment back into it, and evaluates there.
    /// Bit-identical to [`QuantizedPwl::eval`].
    #[inline]
    pub fn eval_tracked(&self, hint: &mut usize, x: f64) -> f64 {
        *hint = self.locate_from(*hint, x);
        self.eval_at(*hint, x)
    }

    /// Total LUT storage in bits: boundaries (argument format) + slopes +
    /// intercepts — "a few LUTs" in the paper's words.
    pub fn storage_bits(&self) -> u64 {
        let n = self.segment_count() as u64;
        n * (self.formats.argument.total_bits() as u64
            + self.formats.slope.total_bits() as u64
            + self.formats.intercept.total_bits() as u64)
    }

    /// Upper bound on the *extra* error introduced by quantization on top
    /// of the PWL error: `α_max·½LSB(c1) + ½LSB(c0) + ½LSB(out)`.
    pub fn quantization_error_bound(&self) -> f64 {
        let alpha_max = *self.boundaries.last().expect("non-empty table");
        alpha_max * self.formats.slope.resolution() / 2.0
            + self.formats.intercept.resolution() / 2.0
            + self.formats.output.resolution() / 2.0
    }

    /// Maximum |quantized eval − √x| over `n` uniform samples — the
    /// end-to-end fixed-point accuracy probe of §VI-A.
    pub fn max_error_sampled(&self, n: usize) -> f64 {
        assert!(n >= 2);
        let lo = self.boundaries[0];
        let hi = *self.boundaries.last().expect("non-empty");
        let mut max = 0.0f64;
        for i in 0..n {
            let x = lo + (hi - lo) * i as f64 / (n as f64 - 1.0);
            max = max.max((self.eval(x) - SqrtFn.eval(x)).abs());
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PwlApprox;

    fn table() -> PwlApprox {
        PwlApprox::build(&SqrtFn, (64.0, 16.0e6), 0.25).unwrap()
    }

    #[test]
    fn quantize_succeeds_with_defaults() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        assert_eq!(q.segment_count(), table().segment_count());
    }

    #[test]
    fn quantized_error_stays_near_delta() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let bound = 0.25 + q.quantization_error_bound();
        let max = q.max_error_sampled(50_000);
        assert!(max <= bound + 1e-9, "max = {max}, bound = {bound}");
        // And quantization cost is small versus δ.
        assert!(q.quantization_error_bound() < 0.1);
    }

    #[test]
    fn fitted_formats_cover_table() {
        let t = PwlApprox::build(&SqrtFn, (1.0, 1e4), 0.1).unwrap();
        let f = LutFormats::fitted_to(&t);
        let q = QuantizedPwl::quantize(&t, f).unwrap();
        assert!(q.max_error_sampled(10_000) < 0.1 + q.quantization_error_bound() + 1e-9);
    }

    #[test]
    fn locate_matches_float_table() {
        let t = table();
        let q = QuantizedPwl::quantize(&t, LutFormats::paper_default()).unwrap();
        for i in 0..1000 {
            let x = 64.0 + (16.0e6 - 64.0) * i as f64 / 999.0;
            assert_eq!(q.locate(x), t.locate(x), "x = {x}");
        }
    }

    #[test]
    fn locate_from_any_hint_matches_binary_search() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let n = q.segment_count();
        for i in 0..2000 {
            let x = 64.0 + (16.0e6 - 64.0) * i as f64 / 1999.0;
            let expected = q.locate(x);
            for hint in [0, n / 2, n - 1, expected] {
                assert_eq!(q.locate_from(hint, x), expected, "x = {x}, hint = {hint}");
            }
        }
        // Out-of-domain arguments clamp exactly like binary search.
        assert_eq!(q.locate_from(n - 1, 1.0), q.locate(1.0));
        assert_eq!(q.locate_from(0, 1e12), q.locate(1e12));
    }

    #[test]
    fn eval_tracked_is_bit_identical_to_eval() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let mut hint = 0usize;
        // A drifting argument stream, as one element's unit sees per nappe.
        for i in 0..5000 {
            let x = 64.0 + (16.0e6 - 64.0) * (i as f64 / 4999.0).powi(2);
            assert_eq!(q.eval_tracked(&mut hint, x).to_bits(), q.eval(x).to_bits());
        }
    }

    #[test]
    fn eval_saturates_out_of_range() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        // Far beyond the domain: output register saturates, no panic.
        let y = q.eval_at(q.segment_count() - 1, 1e12);
        assert!(y <= QFormat::unsigned(13, 5).max_value());
    }

    #[test]
    fn storage_is_a_few_kilobits() {
        // ~70 segments × (25 + 30 + 21) bits ≈ 5.3 kb: "a few LUTs".
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let bits = q.storage_bits();
        assert!(bits < 20_000, "bits = {bits}");
        assert!(bits > 1_000);
    }

    #[test]
    fn narrow_slope_format_overflows() {
        let t = PwlApprox::build(&SqrtFn, (0.01, 10.0), 0.05).unwrap();
        // Slope near x=0.01 is 1/(2·0.1) = 5 — does not fit u0.30.
        let err = QuantizedPwl::quantize(&t, LutFormats::paper_default());
        assert!(err.is_err());
    }
}
