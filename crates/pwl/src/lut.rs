//! Fixed-point coefficient LUTs: the hardware-faithful PWL evaluation.
//!
//! Fig. 2(a) of the paper stores per-segment `c1` (slope) and `c0`
//! (intercept) coefficients in small LUTs; the datapath computes
//! `√α ≈ c1·α + c0` with one multiplier and one adder. This module
//! quantizes a [`PwlApprox`] into such LUTs and models the datapath
//! arithmetic bit-exactly.

use crate::{Concave, PwlApprox, SqrtFn, TrackerStats};
use usbf_fixed::{Fixed, FixedError, QFormat, RoundingMode};

/// Fixed-point formats of the PWL datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutFormats {
    /// Format of the `c1` slope LUT entries.
    pub slope: QFormat,
    /// Format of the `c0` intercept LUT entries.
    pub intercept: QFormat,
    /// Format of the argument register (squared distance in samples²).
    pub argument: QFormat,
    /// Format of the multiplier output register.
    pub accumulator: QFormat,
    /// Format of the result register (delay in samples).
    pub output: QFormat,
}

impl LutFormats {
    /// The defaults used for the paper-scale system: 30 fractional slope
    /// bits (the product `α·Δc1` stays ≪ δ for α up to ~2²⁵), signed 14.6
    /// intercepts, integer 25-bit arguments, and a u13.5 output matching
    /// the TABLESTEER reference format.
    pub fn paper_default() -> Self {
        LutFormats {
            slope: QFormat::unsigned(0, 30),
            intercept: QFormat::signed(14, 6),
            argument: QFormat::unsigned(25, 0),
            accumulator: QFormat::signed(15, 8),
            output: QFormat::unsigned(13, 5),
        }
    }

    /// Picks formats that fit a given table: widens the slope/intercept
    /// integer parts to hold the table's extremes while keeping the
    /// default fractional precision.
    pub fn fitted_to(table: &PwlApprox) -> Self {
        let mut max_slope = 0.0f64;
        let mut max_icept = 0.0f64;
        for s in table.segments() {
            max_slope = max_slope.max(s.slope.abs());
            max_icept = max_icept.max(s.intercept.abs());
        }
        let slope_int = if max_slope < 1.0 {
            0
        } else {
            (max_slope.log2().floor() as u32) + 1
        };
        let icept_int = (max_icept.max(1.0).log2().floor() as u32) + 2;
        let (_, hi) = table.domain();
        let arg_int = (hi.max(1.0).log2().floor() as u32) + 1;
        let out_max = hi.sqrt();
        let out_int = (out_max.max(1.0).log2().floor() as u32) + 1;
        LutFormats {
            slope: QFormat::unsigned(slope_int, 30),
            intercept: QFormat::signed(icept_int, 6),
            argument: QFormat::unsigned(arg_int, 0),
            accumulator: QFormat::signed(out_int + 2, 8),
            output: QFormat::unsigned(out_int, 5),
        }
    }
}

/// A PWL table with coefficients quantized to fixed point, evaluated with
/// the bit-true datapath of Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPwl {
    boundaries: Vec<f64>,
    slopes: Vec<Fixed>,
    intercepts: Vec<Fixed>,
    formats: LutFormats,
}

impl QuantizedPwl {
    /// Quantizes every segment of `table` into the given formats.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`FixedError`] if any coefficient overflows
    /// its format.
    pub fn quantize(table: &PwlApprox, formats: LutFormats) -> Result<Self, FixedError> {
        let mut boundaries = Vec::with_capacity(table.segment_count() + 1);
        let mut slopes = Vec::with_capacity(table.segment_count());
        let mut intercepts = Vec::with_capacity(table.segment_count());
        for s in table.segments() {
            boundaries.push(s.x0);
            slopes.push(Fixed::from_f64(
                s.slope,
                formats.slope,
                RoundingMode::Nearest,
            )?);
            intercepts.push(Fixed::from_f64(
                s.intercept,
                formats.intercept,
                RoundingMode::Nearest,
            )?);
        }
        boundaries.push(table.domain().1);
        Ok(QuantizedPwl {
            boundaries,
            slopes,
            intercepts,
            formats,
        })
    }

    /// Number of segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.slopes.len()
    }

    /// The datapath formats.
    #[inline]
    pub fn formats(&self) -> &LutFormats {
        &self.formats
    }

    /// Segment index containing `x` (clamped at the ends), by binary
    /// search.
    pub fn locate(&self, x: f64) -> usize {
        let n = self.segment_count();
        match self.boundaries[..n]
            .binary_search_by(|b| b.partial_cmp(&x).expect("finite boundaries"))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Bit-true evaluation using segment `idx`: quantize α, one fixed-point
    /// multiply into the accumulator, one full-width add of `c0`, then a
    /// final rounding into the output register. Saturates (as hardware
    /// registers do) instead of failing.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn eval_at(&self, idx: usize, x: f64) -> f64 {
        let arg = Fixed::saturating_from_f64(x, self.formats.argument, RoundingMode::Nearest);
        let prod = match arg.mul_into(
            self.slopes[idx],
            self.formats.accumulator,
            RoundingMode::HalfUp,
        ) {
            Ok(p) => p,
            Err(_) => Fixed::saturating_from_f64(
                arg.to_f64() * self.slopes[idx].to_f64(),
                self.formats.accumulator,
                RoundingMode::HalfUp,
            ),
        };
        let sum = prod.wide_add(self.intercepts[idx]);
        Fixed::saturating_from_f64(sum.to_f64(), self.formats.output, RoundingMode::HalfUp).to_f64()
    }

    /// Locate + evaluate.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.eval_at(self.locate(x), x)
    }

    /// Segment index containing `x`, found by walking from `hint` — the
    /// §IV-B tracking policy ("transitions across segments are gradual, so
    /// no search is needed"). Returns exactly what [`QuantizedPwl::locate`]
    /// returns, in O(steps) instead of O(log n) when arguments drift
    /// slowly, as a nappe-major sweep produces.
    pub fn locate_from(&self, hint: usize, x: f64) -> usize {
        let n = self.segment_count();
        let mut i = hint.min(n - 1);
        while i > 0 && x < self.boundaries[i] {
            i -= 1;
        }
        while i + 1 < n && x >= self.boundaries[i + 1] {
            i += 1;
        }
        i
    }

    /// Tracked locate + evaluate: walks the segment pointer from `*hint`,
    /// stores the found segment back into it, and evaluates there.
    /// Bit-identical to [`QuantizedPwl::eval`].
    #[inline]
    pub fn eval_tracked(&self, hint: &mut usize, x: f64) -> f64 {
        *hint = self.locate_from(*hint, x);
        self.eval_at(*hint, x)
    }

    /// Evaluates a whole row of arguments segment-major: walks the
    /// segment pointer from `*hint` exactly like per-element
    /// [`QuantizedPwl::eval_tracked`] calls would, but fetches each
    /// segment's `(c1, c0)` coefficients **once per contiguous span** of
    /// arguments instead of once per element, and runs the span through a
    /// branch-free fixed-point multiply-add and saturating quantize.
    ///
    /// Bit-identical to calling `eval_tracked(hint, x)` for every element
    /// in order — same [`Fixed`] rounding at every stage, same final
    /// pointer in `*hint` — and the returned [`TrackerStats`] match what
    /// a [`crate::TrackingEvaluator`]-style per-element step count would
    /// accumulate: `evals = xs.len()`, `steps`/`max_step` from the
    /// pointer movements (elements inside a span move the pointer by 0),
    /// and `seeks = 0` (tracking never searches).
    ///
    /// Arguments must not be NaN (the scalar datapath rejects NaN with a
    /// panic; the batched kernel's behaviour on NaN is unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `out` have different lengths.
    pub fn eval_row_tracked(&self, hint: &mut usize, xs: &[f64], out: &mut [f64]) -> TrackerStats {
        assert_eq!(xs.len(), out.len(), "argument/output rows must match");
        let n = self.segment_count();
        let mut stats = TrackerStats {
            evals: xs.len() as u64,
            ..TrackerStats::default()
        };
        let mut cur = (*hint).min(n - 1);
        let kernel = self.row_kernel();
        let mut i = 0;
        while i < xs.len() {
            let target = self.locate_from(cur, xs[i]);
            let moved = (target as i64 - cur as i64).unsigned_abs();
            stats.steps += moved;
            stats.max_step = stats.max_step.max(moved);
            cur = target;
            // The span stays on segment `cur` exactly while
            // `locate_from(cur, x) == cur`: at the table ends the pointer
            // clamps, so the matching boundary check drops away.
            let lo = if cur == 0 {
                f64::NEG_INFINITY
            } else {
                self.boundaries[cur]
            };
            let hi = if cur + 1 == n {
                f64::INFINITY
            } else {
                self.boundaries[cur + 1]
            };
            let start = i;
            i += 1;
            while i < xs.len() && xs[i] >= lo && xs[i] < hi {
                i += 1;
            }
            self.eval_span(&kernel, cur, hi, &xs[start..i], &mut out[start..i]);
        }
        *hint = cur;
        stats
    }

    /// Segment-major row evaluation starting from a binary-search seek on
    /// the first element — bit-identical to per-element
    /// [`QuantizedPwl::eval`].
    pub fn eval_row(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "argument/output rows must match");
        if xs.is_empty() {
            return;
        }
        let mut hint = self.locate(xs[0]);
        self.eval_row_tracked(&mut hint, xs, out);
    }

    /// Resolves the per-call constants of the row datapath: everything in
    /// [`QuantizedPwl::eval_at`] that depends only on the formats, hoisted
    /// out of the element loop.
    fn row_kernel(&self) -> RowKernel {
        let arg = self.formats.argument;
        let slope = self.formats.slope;
        let acc = self.formats.accumulator;
        let icept = self.formats.intercept;
        let output = self.formats.output;
        let sum = QFormat::sum_format(acc, icept);
        let shift = (arg.frac_bits() + slope.frac_bits()) as i32 - acc.frac_bits() as i32;
        // The libm-free fast kernel replicates the scalar rounding only
        // under these conditions (all hold for the paper's formats and
        // every `fitted_to` output):
        //  * integer unsigned argument ≤ 52 bits — `round(x)` reduces to
        //    the guarded `(x + 0.5) as i64` (exact: x + 0.5 is exactly
        //    representable for 0.5 ≤ x < 2^52, and `max_raw as f64` is);
        //  * unsigned slope with arg·slope ≤ 62 bits — the product fits
        //    i64 and is non-negative, so HalfUp's `floor` is a plain
        //    truncating cast;
        //  * positive multiplier shift — the accumulator rescale is the
        //    float division path, reproduced by multiplying with the
        //    exact reciprocal `2^-shift`;
        //  * unsigned output ≤ 52 bits — the saturating compare-select
        //    works on exactly-representable bounds.
        let fast = !arg.is_signed()
            && arg.frac_bits() == 0
            && arg.total_bits() <= 52
            && !slope.is_signed()
            && arg.total_bits() + slope.total_bits() <= 62
            && shift > 0
            && !output.is_signed()
            && output.total_bits() <= 52;
        // The branch-free *vector* kernel additionally runs the integer
        // registers as IEEE doubles, which is bit-exact only while every
        // raw value stays exactly representable: a ≤52-bit slope makes
        // the f64 product of two exact factors round identically to the
        // exact integer product, and a ≤52-bit sum format makes the
        // accumulator truncation, the power-of-two alignments and the
        // aligned add all exact.
        let vec = fast && slope.total_bits() <= 52 && sum.total_bits() <= 52;
        let sh_acc = sum.frac_bits() - acc.frac_bits();
        RowKernel {
            fast,
            vec,
            arg_max_raw: arg.max_raw(),
            mul_inv: (-shift as f64).exp2(),
            acc_max_raw: acc.max_raw(),
            sh_acc,
            acc_scale: if vec { (1u64 << sh_acc) as f64 } else { 0.0 },
            sh_icept: sum.frac_bits() - icept.frac_bits(),
            sum_res: sum.resolution(),
            out_scale: (output.frac_bits() as f64).exp2(),
            out_max_raw: output.max_raw(),
            out_max_f: output.max_raw() as f64,
            out_res: output.resolution(),
        }
    }

    /// Evaluates one contiguous span of arguments that all live on segment
    /// `idx`, with the coefficients fetched once. Bit-identical to calling
    /// [`QuantizedPwl::eval_at`] per element.
    fn eval_span(&self, k: &RowKernel, idx: usize, hi: f64, xs: &[f64], out: &mut [f64]) {
        if !k.fast {
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = self.eval_at(idx, x);
            }
            return;
        }
        let slope_raw = self.slopes[idx].raw();
        let icept_shifted = self.intercepts[idx].raw() << k.sh_icept;
        if k.vec {
            // Overflow is decided once per span, not per element: every
            // span element satisfies `x < hi` (the segment's upper
            // boundary; +∞ on the last segment, where the argument
            // register saturates anyway), the argument register is
            // non-negative, and the accumulator is monotone in it
            // (non-negative slope, rounded rescale, truncation). If even
            // the span's largest possible accumulator fits, no element
            // needs the saturating fallback and the whole span runs
            // branch-free.
            let t_max = if hi.is_finite() {
                ((hi + 0.5) as i64).min(k.arg_max_raw).max(0)
            } else {
                k.arg_max_raw
            };
            let acc_span_max = ((t_max * slope_raw) as f64 * k.mul_inv + 0.5) as i64;
            if acc_span_max <= k.acc_max_raw {
                // The same datapath as the checked loop below, run
                // entirely in IEEE doubles (exact under the `vec` format
                // gate): straight-line floor/trunc/min/select ops that
                // the compiler auto-vectorizes, no i64↔f64 round trips.
                let slope_f = slope_raw as f64;
                let icept_f = icept_shifted as f64;
                let arg_max_f = k.arg_max_raw as f64;
                for (o, &x) in out.iter_mut().zip(xs) {
                    let r = (x + 0.5).floor().min(arg_max_f);
                    let t = if x < 0.5 { 0.0 } else { r };
                    let acc = (t * slope_f * k.mul_inv + 0.5).trunc();
                    let sum = acc * k.acc_scale + icept_f;
                    let w = (sum * k.sum_res) * k.out_scale + 0.5;
                    let raw = if w < 1.0 {
                        0.0
                    } else if w >= k.out_max_f {
                        k.out_max_f
                    } else {
                        w.trunc()
                    };
                    *o = raw * k.out_res;
                }
                return;
            }
        }
        for (o, &x) in out.iter_mut().zip(xs) {
            // Argument register: Nearest-rounded integer quantize with
            // saturation. The `x < 0.5` guard keeps values that round to
            // zero (including 0.49999999999999994, where `x + 0.5`
            // float-rounds up to 1.0) off the add; the cast saturates
            // huge and infinite x before the clamp.
            let t = if x < 0.5 { 0 } else { (x + 0.5) as i64 };
            let t = t.min(k.arg_max_raw);
            // Multiplier → accumulator register: exact integer product,
            // rescaled through f64 exactly like `mul_into`'s division
            // path, HalfUp-rounded (the product is non-negative, so
            // `floor` is a truncating cast).
            let prod = t * slope_raw;
            let acc_raw = (prod as f64 * k.mul_inv + 0.5) as i64;
            if acc_raw > k.acc_max_raw {
                // Accumulator overflow: the scalar path re-quantizes with
                // saturation. Rare and cold — delegate to the scalar.
                *o = self.eval_at(idx, x);
                continue;
            }
            // Full-width adder, then HalfUp into the output register with
            // a saturating compare-select (`floor(w) ≤ 0 ⟺ w < 1`,
            // `floor(w) ≥ max ⟺ w ≥ max` for integer max).
            let sum_raw = (acc_raw << k.sh_acc) + icept_shifted;
            let w = (sum_raw as f64 * k.sum_res) * k.out_scale + 0.5;
            let raw = if w < 1.0 {
                0
            } else if w >= k.out_max_f {
                k.out_max_raw
            } else {
                w as i64
            };
            *o = raw as f64 * k.out_res;
        }
    }

    /// Total LUT storage in bits: boundaries (argument format) + slopes +
    /// intercepts — "a few LUTs" in the paper's words.
    pub fn storage_bits(&self) -> u64 {
        let n = self.segment_count() as u64;
        n * (self.formats.argument.total_bits() as u64
            + self.formats.slope.total_bits() as u64
            + self.formats.intercept.total_bits() as u64)
    }

    /// Upper bound on the *extra* error introduced by quantization on top
    /// of the PWL error: `α_max·½LSB(c1) + ½LSB(c0) + ½LSB(out)`.
    pub fn quantization_error_bound(&self) -> f64 {
        let alpha_max = *self.boundaries.last().expect("non-empty table");
        alpha_max * self.formats.slope.resolution() / 2.0
            + self.formats.intercept.resolution() / 2.0
            + self.formats.output.resolution() / 2.0
    }

    /// Maximum |quantized eval − √x| over `n` uniform samples — the
    /// end-to-end fixed-point accuracy probe of §VI-A.
    pub fn max_error_sampled(&self, n: usize) -> f64 {
        assert!(n >= 2);
        let lo = self.boundaries[0];
        let hi = *self.boundaries.last().expect("non-empty");
        let mut max = 0.0f64;
        for i in 0..n {
            let x = lo + (hi - lo) * i as f64 / (n as f64 - 1.0);
            max = max.max((self.eval(x) - SqrtFn.eval(x)).abs());
        }
        max
    }
}

/// Per-row constants of the batched datapath (see
/// [`QuantizedPwl::row_kernel`]).
struct RowKernel {
    /// Whether the formats admit the libm-free fast span kernel.
    fast: bool,
    /// Whether they additionally admit the all-f64 vector span kernel.
    vec: bool,
    /// Saturation bound of the argument register.
    arg_max_raw: i64,
    /// Exact reciprocal `2^-shift` of the multiplier's rescale divisor.
    mul_inv: f64,
    /// Saturation bound of the accumulator register.
    acc_max_raw: i64,
    /// Left shift aligning the accumulator raw into the sum format.
    sh_acc: u32,
    /// The same shift as an exact power-of-two factor (vector path only).
    acc_scale: f64,
    /// Left shift aligning the intercept raw into the sum format.
    sh_icept: u32,
    /// Resolution of the full-width sum format.
    sum_res: f64,
    /// `2^frac` of the output register.
    out_scale: f64,
    /// Saturation bound of the output register.
    out_max_raw: i64,
    /// The same bound as f64 (exact: ≤ 52 bits on the fast path).
    out_max_f: f64,
    /// Resolution of the output register.
    out_res: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PwlApprox;

    fn table() -> PwlApprox {
        PwlApprox::build(&SqrtFn, (64.0, 16.0e6), 0.25).unwrap()
    }

    #[test]
    fn quantize_succeeds_with_defaults() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        assert_eq!(q.segment_count(), table().segment_count());
    }

    #[test]
    fn quantized_error_stays_near_delta() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let bound = 0.25 + q.quantization_error_bound();
        let max = q.max_error_sampled(50_000);
        assert!(max <= bound + 1e-9, "max = {max}, bound = {bound}");
        // And quantization cost is small versus δ.
        assert!(q.quantization_error_bound() < 0.1);
    }

    #[test]
    fn fitted_formats_cover_table() {
        let t = PwlApprox::build(&SqrtFn, (1.0, 1e4), 0.1).unwrap();
        let f = LutFormats::fitted_to(&t);
        let q = QuantizedPwl::quantize(&t, f).unwrap();
        assert!(q.max_error_sampled(10_000) < 0.1 + q.quantization_error_bound() + 1e-9);
    }

    #[test]
    fn locate_matches_float_table() {
        let t = table();
        let q = QuantizedPwl::quantize(&t, LutFormats::paper_default()).unwrap();
        for i in 0..1000 {
            let x = 64.0 + (16.0e6 - 64.0) * i as f64 / 999.0;
            assert_eq!(q.locate(x), t.locate(x), "x = {x}");
        }
    }

    #[test]
    fn locate_from_any_hint_matches_binary_search() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let n = q.segment_count();
        for i in 0..2000 {
            let x = 64.0 + (16.0e6 - 64.0) * i as f64 / 1999.0;
            let expected = q.locate(x);
            for hint in [0, n / 2, n - 1, expected] {
                assert_eq!(q.locate_from(hint, x), expected, "x = {x}, hint = {hint}");
            }
        }
        // Out-of-domain arguments clamp exactly like binary search.
        assert_eq!(q.locate_from(n - 1, 1.0), q.locate(1.0));
        assert_eq!(q.locate_from(0, 1e12), q.locate(1e12));
    }

    #[test]
    fn eval_tracked_is_bit_identical_to_eval() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let mut hint = 0usize;
        // A drifting argument stream, as one element's unit sees per nappe.
        for i in 0..5000 {
            let x = 64.0 + (16.0e6 - 64.0) * (i as f64 / 4999.0).powi(2);
            assert_eq!(q.eval_tracked(&mut hint, x).to_bits(), q.eval(x).to_bits());
        }
    }

    #[test]
    fn eval_saturates_out_of_range() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        // Far beyond the domain: output register saturates, no panic.
        let y = q.eval_at(q.segment_count() - 1, 1e12);
        assert!(y <= QFormat::unsigned(13, 5).max_value());
    }

    #[test]
    fn storage_is_a_few_kilobits() {
        // ~70 segments × (25 + 30 + 21) bits ≈ 5.3 kb: "a few LUTs".
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let bits = q.storage_bits();
        assert!(bits < 20_000, "bits = {bits}");
        assert!(bits > 1_000);
    }

    /// A drifting argument stream with out-of-domain excursions at both
    /// ends, exercising every saturation edge of the row kernel.
    fn edge_stream() -> Vec<f64> {
        let mut xs = Vec::new();
        for i in 0..4000 {
            let x = 64.0 + (16.0e6 - 64.0) * (i as f64 / 3999.0).powi(2);
            xs.push(x);
        }
        xs.extend([0.0, 0.25, 0.49999999999999994, 0.5, 1.0, 63.9]);
        xs.extend([16.0e6, 1e9, 1e12, f64::INFINITY, 5e5, 100.0]);
        xs
    }

    #[test]
    fn eval_row_tracked_bit_identical_to_scalar_eval_tracked() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let xs = edge_stream();
        for start_hint in [0usize, 10, q.segment_count() - 1, usize::MAX] {
            let mut scalar_hint = start_hint;
            let expected: Vec<f64> = xs
                .iter()
                .map(|&x| q.eval_tracked(&mut scalar_hint, x))
                .collect();
            let mut row_hint = start_hint;
            let mut got = vec![0.0; xs.len()];
            q.eval_row_tracked(&mut row_hint, &xs, &mut got);
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(g.to_bits(), e.to_bits(), "element {i}, x = {}", xs[i]);
            }
            assert_eq!(row_hint, scalar_hint, "final pointer, hint {start_hint}");
        }
    }

    #[test]
    fn eval_row_tracked_telemetry_matches_per_element_tracking() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let xs = edge_stream();
        let n = q.segment_count();
        for start_hint in [0usize, n / 2, n - 1] {
            // Per-element reference: what a chain of locate_from calls
            // moves the pointer by.
            let mut cur = start_hint.min(n - 1);
            let mut expected = TrackerStats {
                evals: xs.len() as u64,
                ..TrackerStats::default()
            };
            for &x in &xs {
                let target = q.locate_from(cur, x);
                let moved = (target as i64 - cur as i64).unsigned_abs();
                expected.steps += moved;
                expected.max_step = expected.max_step.max(moved);
                cur = target;
            }
            let mut hint = start_hint;
            let mut out = vec![0.0; xs.len()];
            let got = q.eval_row_tracked(&mut hint, &xs, &mut out);
            assert_eq!(got, expected, "hint {start_hint}");
            assert_eq!(got.seeks, 0);
        }
    }

    #[test]
    fn eval_row_bit_identical_to_per_element_eval() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        let xs = edge_stream();
        let mut got = vec![0.0; xs.len()];
        q.eval_row(&xs, &mut got);
        for (i, (&g, &x)) in got.iter().zip(&xs).enumerate() {
            assert_eq!(g.to_bits(), q.eval(x).to_bits(), "element {i}, x = {x}");
        }
    }

    #[test]
    fn eval_row_generic_fallback_formats_stay_bit_identical() {
        // Formats the fast kernel refuses (fractional argument bits,
        // signed output): the generic span path must still match the
        // scalar datapath bit for bit.
        let t = table();
        let mut formats = LutFormats::paper_default();
        formats.argument = QFormat::unsigned(25, 2);
        formats.output = QFormat::signed(13, 5);
        let q = QuantizedPwl::quantize(&t, formats).unwrap();
        let xs = edge_stream();
        let mut scalar_hint = 0usize;
        let mut row_hint = 0usize;
        let expected: Vec<f64> = xs
            .iter()
            .map(|&x| q.eval_tracked(&mut scalar_hint, x))
            .collect();
        let mut got = vec![0.0; xs.len()];
        q.eval_row_tracked(&mut row_hint, &xs, &mut got);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g.to_bits(), e.to_bits(), "element {i}, x = {}", xs[i]);
        }
        assert_eq!(row_hint, scalar_hint);
    }

    #[test]
    fn paper_and_fitted_formats_take_the_vector_span_kernel() {
        // The perf claim rides on the all-f64 vector path: the paper's
        // formats (and any fitted_to output) must pass both gates, or
        // the fill silently degrades to the checked scalar loop.
        let t = table();
        for formats in [LutFormats::paper_default(), LutFormats::fitted_to(&t)] {
            let q = QuantizedPwl::quantize(&t, formats).unwrap();
            let k = q.row_kernel();
            assert!(k.fast && k.vec, "formats {formats:?} left the vector path");
        }
    }

    #[test]
    fn eval_row_wide_slope_format_uses_checked_loop_bit_identically() {
        // A 53-bit slope passes the fast gate (arg 9 + slope 53 = 62)
        // but not the vector gate: the checked integer loop must carry
        // the span bit-identically to the scalar datapath.
        let t = PwlApprox::build(&SqrtFn, (64.0, 500.0), 0.25).unwrap();
        let mut formats = LutFormats::fitted_to(&t);
        formats.slope = QFormat::unsigned(0, 53);
        let q = QuantizedPwl::quantize(&t, formats).unwrap();
        assert!(q.row_kernel().fast && !q.row_kernel().vec);
        let xs: Vec<f64> = (0..500)
            .map(|i| 64.0 + 436.0 * (i as f64 / 499.0))
            .chain([0.0, 63.9, 500.0, 1e9, f64::INFINITY, 80.0])
            .collect();
        let mut got = vec![0.0; xs.len()];
        q.eval_row(&xs, &mut got);
        for (i, (&g, &x)) in got.iter().zip(&xs).enumerate() {
            assert_eq!(g.to_bits(), q.eval(x).to_bits(), "element {i}, x = {x}");
        }
    }

    #[test]
    fn eval_row_accumulator_overflow_spans_fall_back_bit_identically() {
        // A deliberately narrow accumulator: the span precheck must
        // refuse the vector loop wherever any element could overflow,
        // and the checked loop's per-element fallback must saturate
        // exactly like the scalar datapath.
        let t = table();
        let mut formats = LutFormats::fitted_to(&t);
        formats.accumulator = QFormat::signed(4, 8);
        let q = QuantizedPwl::quantize(&t, formats).unwrap();
        assert!(
            q.row_kernel().vec,
            "gate is format-only; overflow is per span"
        );
        let xs = edge_stream();
        let mut scalar_hint = 0usize;
        let mut row_hint = 0usize;
        let expected: Vec<f64> = xs
            .iter()
            .map(|&x| q.eval_tracked(&mut scalar_hint, x))
            .collect();
        let mut got = vec![0.0; xs.len()];
        q.eval_row_tracked(&mut row_hint, &xs, &mut got);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g.to_bits(), e.to_bits(), "element {i}, x = {}", xs[i]);
        }
        assert_eq!(row_hint, scalar_hint);
    }

    #[test]
    fn eval_row_empty_is_a_no_op() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        q.eval_row(&[], &mut []);
        let mut hint = 3usize;
        let stats = q.eval_row_tracked(&mut hint, &[], &mut []);
        assert_eq!(hint, 3);
        assert_eq!(stats, TrackerStats::default());
    }

    #[test]
    #[should_panic(expected = "argument/output rows must match")]
    fn eval_row_rejects_mismatched_lengths() {
        let q = QuantizedPwl::quantize(&table(), LutFormats::paper_default()).unwrap();
        q.eval_row(&[100.0, 200.0], &mut [0.0]);
    }

    #[test]
    fn narrow_slope_format_overflows() {
        let t = PwlApprox::build(&SqrtFn, (0.01, 10.0), 0.05).unwrap();
        // Slope near x=0.01 is 1/(2·0.1) = 5 — does not fit u0.30.
        let err = QuantizedPwl::quantize(&t, LutFormats::paper_default());
        assert!(err.is_err());
    }
}
