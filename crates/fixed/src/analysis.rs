//! The §VI-A fixed-point accuracy experiment.
//!
//! TABLESTEER computes each delay as a sum of three stored terms — the
//! reference delay plus the x- and y-steering corrections — and rounds the
//! sum to an integer echo-buffer index. Storing the terms in fixed point
//! perturbs the sum and can *flip* the selected index relative to a
//! double-precision computation. The paper reports (10⁷ random inputs):
//!
//! * 13-bit integer storage → 33 % of samples flip (by at most ±1),
//! * 18-bit (13.5 / 13.4) storage → < 2 % flip.
//!
//! [`rounding_flip_stats`] reproduces that simulation for arbitrary format
//! pairs; the caller supplies the input distribution (see
//! `usbf-bench/src/bin/exp_quantization.rs` for the paper-scale run).

use crate::{Fixed, QFormat, RoundingMode};

/// Accumulated results of a rounding-flip experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlipStats {
    /// Number of (reference, x-correction, y-correction) triples evaluated.
    pub total: u64,
    /// Triples whose hardware index differs from the float index.
    pub flipped: u64,
    /// Largest absolute index difference observed.
    pub max_abs_index_diff: i64,
}

impl FlipStats {
    /// Fraction of samples whose index flipped, in `[0, 1]`.
    pub fn flipped_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.flipped as f64 / self.total as f64
        }
    }

    /// Merges two partial results (e.g. from sharded runs).
    pub fn merge(self, other: FlipStats) -> FlipStats {
        FlipStats {
            total: self.total + other.total,
            flipped: self.flipped + other.flipped,
            max_abs_index_diff: self.max_abs_index_diff.max(other.max_abs_index_diff),
        }
    }
}

/// Evaluates one triple: quantizes the reference delay into `ref_fmt` and
/// both corrections into `corr_fmt`, sums them exactly (full-width adder),
/// rounds to an integer index, and compares against the rounded
/// double-precision sum. Returns the signed index difference
/// `hardware − float`.
pub fn index_flip(
    ref_fmt: QFormat,
    corr_fmt: QFormat,
    reference: f64,
    corr_x: f64,
    corr_y: f64,
    mode: RoundingMode,
) -> i64 {
    let r = Fixed::saturating_from_f64(reference, ref_fmt, RoundingMode::Nearest);
    let cx = Fixed::saturating_from_f64(corr_x, corr_fmt, RoundingMode::Nearest);
    let cy = Fixed::saturating_from_f64(corr_y, corr_fmt, RoundingMode::Nearest);
    let hw = r.wide_add(cx).wide_add(cy).round_to_int(mode);
    let float = mode.apply(reference + corr_x + corr_y) as i64;
    hw - float
}

/// Runs the flip experiment over an input stream of
/// `(reference, corr_x, corr_y)` triples (all in delay samples).
///
/// The reference values should stay within `ref_fmt`'s range and the
/// corrections within `corr_fmt`'s; out-of-range inputs saturate, as the
/// hardware registers would.
pub fn rounding_flip_stats(
    ref_fmt: QFormat,
    corr_fmt: QFormat,
    samples: impl IntoIterator<Item = (f64, f64, f64)>,
    mode: RoundingMode,
) -> FlipStats {
    let mut stats = FlipStats::default();
    for (r, cx, cy) in samples {
        let d = index_flip(ref_fmt, corr_fmt, r, cx, cy, mode);
        stats.total += 1;
        if d != 0 {
            stats.flipped += 1;
        }
        stats.max_abs_index_diff = stats.max_abs_index_diff.max(d.abs());
    }
    stats
}

/// Root-mean-square quantization error (in LSBs of `fmt`) over a stream of
/// values — a sanity probe for format choices; ½√3 ≈ 0.289 LSB is the
/// uniform-quantization expectation.
pub fn quantization_rmse_lsb(fmt: QFormat, values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum_sq = 0.0;
    let mut n = 0u64;
    for v in values {
        let q = Fixed::saturating_from_f64(v, fmt, RoundingMode::Nearest);
        let e = (q.to_f64() - v) / fmt.resolution();
        sum_sq += e * e;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum_sq / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn triples(n: usize, seed: u64) -> Vec<(f64, f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (
                    rng.random_range(0.0..8000.0),
                    rng.random_range(-400.0..400.0),
                    rng.random_range(-400.0..400.0),
                )
            })
            .collect()
    }

    #[test]
    fn exact_inputs_never_flip() {
        // Integer-valued inputs are exactly representable: no flips.
        let samples = (0..1000).map(|i| (i as f64, (i % 7) as f64 - 3.0, (i % 5) as f64 - 2.0));
        let s = rounding_flip_stats(
            QFormat::INT_13,
            QFormat::CORR_18,
            samples,
            RoundingMode::HalfUp,
        );
        assert_eq!(s.flipped, 0);
        assert_eq!(s.max_abs_index_diff, 0);
    }

    #[test]
    fn int13_flip_fraction_near_one_third() {
        // §VI-A: "33% of the echo samples experience this additional
        // inaccuracy if using 13 bit integers".
        let s = rounding_flip_stats(
            QFormat::INT_13,
            QFormat::signed(13, 0),
            triples(200_000, 42),
            RoundingMode::HalfUp,
        );
        let f = s.flipped_fraction();
        assert!((f - 1.0 / 3.0).abs() < 0.01, "flip fraction = {f}");
    }

    #[test]
    fn bits18_flip_fraction_below_two_percent_scale() {
        // §VI-A: "reduced to less than 2% when using a 18-bit (13.5) fixed
        // point representation" (we land in the same few-percent regime).
        let s = rounding_flip_stats(
            QFormat::REF_18,
            QFormat::CORR_18,
            triples(200_000, 43),
            RoundingMode::HalfUp,
        );
        let f = s.flipped_fraction();
        assert!(f < 0.05, "flip fraction = {f}");
        assert!(f > 0.0, "some flips must occur");
    }

    #[test]
    fn flips_are_at_most_one_sample_for_paper_formats() {
        // §VI-A: "the maximum difference ... is of ±1 sample". This holds
        // when the corrections keep ≥4 fractional bits (the paper stores
        // them in 13.4 in both cited cases): total perturbation stays below
        // 0.5 + 2·2⁻⁵ < 1 − u for the final round.
        for (rf, cf) in [
            (QFormat::INT_13, QFormat::CORR_18),
            (QFormat::REF_18, QFormat::CORR_18),
        ] {
            let s = rounding_flip_stats(rf, cf, triples(100_000, 44), RoundingMode::HalfUp);
            assert!(
                s.max_abs_index_diff <= 1,
                "{rf}/{cf}: {}",
                s.max_abs_index_diff
            );
        }
        // The aggressive 14-bit pair (integer corrections) admits rare ±2
        // flips in the tail: three half-sample perturbations can align.
        let s = rounding_flip_stats(
            QFormat::REF_14,
            QFormat::CORR_14,
            triples(100_000, 44),
            RoundingMode::HalfUp,
        );
        assert!(s.max_abs_index_diff <= 2);
    }

    #[test]
    fn finer_formats_flip_less() {
        let coarse = rounding_flip_stats(
            QFormat::INT_13,
            QFormat::CORR_14,
            triples(50_000, 45),
            RoundingMode::HalfUp,
        );
        let fine = rounding_flip_stats(
            QFormat::REF_18,
            QFormat::CORR_18,
            triples(50_000, 45),
            RoundingMode::HalfUp,
        );
        assert!(fine.flipped_fraction() < coarse.flipped_fraction());
    }

    #[test]
    fn merge_accumulates() {
        let a = FlipStats {
            total: 10,
            flipped: 2,
            max_abs_index_diff: 1,
        };
        let b = FlipStats {
            total: 30,
            flipped: 3,
            max_abs_index_diff: 2,
        };
        let m = a.merge(b);
        assert_eq!(m.total, 40);
        assert_eq!(m.flipped, 5);
        assert_eq!(m.max_abs_index_diff, 2);
        assert!((m.flipped_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn rmse_matches_uniform_quantization_theory() {
        let mut rng = StdRng::seed_from_u64(7);
        let vals: Vec<f64> = (0..100_000).map(|_| rng.random_range(0.0..100.0)).collect();
        let rmse = quantization_rmse_lsb(QFormat::unsigned(10, 3), vals);
        // Uniform quantization noise: 1/√12 ≈ 0.2887 LSB.
        assert!((rmse - 0.2887).abs() < 0.01, "rmse = {rmse}");
    }

    #[test]
    fn empty_stream_is_zero() {
        let s = rounding_flip_stats(
            QFormat::INT_13,
            QFormat::CORR_18,
            std::iter::empty(),
            RoundingMode::HalfUp,
        );
        assert_eq!(s.flipped_fraction(), 0.0);
        assert_eq!(
            quantization_rmse_lsb(QFormat::INT_13, std::iter::empty()),
            0.0
        );
    }
}
