//! Q-format descriptors.

use std::fmt;

/// A fixed-point format: `int_bits` integer bits, `frac_bits` fractional
/// bits, plus one sign bit when signed (two's complement).
///
/// The paper writes these as `I.F`, e.g. "13.5 unsigned" (18 bits total) or
/// "signed 13.4" (18 bits total including the sign).
///
/// ```
/// use usbf_fixed::QFormat;
/// assert_eq!(QFormat::REF_18.total_bits(), 18);
/// assert_eq!(QFormat::CORR_18.total_bits(), 18);
/// assert_eq!(QFormat::REF_18.resolution(), 1.0 / 32.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    int_bits: u32,
    frac_bits: u32,
    signed: bool,
}

impl QFormat {
    /// Reference-delay format of the 18-bit TABLESTEER design: unsigned
    /// 13.5 (§V-B).
    pub const REF_18: QFormat = QFormat {
        int_bits: 13,
        frac_bits: 5,
        signed: false,
    };
    /// Correction format of the 18-bit design: signed 13.4 (§V-B).
    pub const CORR_18: QFormat = QFormat {
        int_bits: 13,
        frac_bits: 4,
        signed: true,
    };
    /// Reference-delay format of the 14-bit design: unsigned 13.1.
    pub const REF_14: QFormat = QFormat {
        int_bits: 13,
        frac_bits: 1,
        signed: false,
    };
    /// Correction format of the 14-bit design: signed 13.0.
    pub const CORR_14: QFormat = QFormat {
        int_bits: 13,
        frac_bits: 0,
        signed: true,
    };
    /// Plain 13-bit unsigned integer delays (the §VI-A "13 bit integers"
    /// baseline).
    pub const INT_13: QFormat = QFormat {
        int_bits: 13,
        frac_bits: 0,
        signed: false,
    };

    /// Creates an unsigned format with the given integer and fractional
    /// bit counts.
    ///
    /// # Panics
    ///
    /// Panics if the total width is 0 or exceeds 62 bits (the headroom kept
    /// for intermediate sums in `i64` arithmetic).
    pub const fn unsigned(int_bits: u32, frac_bits: u32) -> Self {
        assert!(
            int_bits + frac_bits > 0,
            "format must have at least one bit"
        );
        assert!(
            int_bits + frac_bits <= 62,
            "format too wide for i64 backing"
        );
        QFormat {
            int_bits,
            frac_bits,
            signed: false,
        }
    }

    /// Creates a signed (two's complement) format; the sign bit is *in
    /// addition to* `int_bits + frac_bits`.
    ///
    /// # Panics
    ///
    /// Panics if the total width is 0 or exceeds 62 bits.
    pub const fn signed(int_bits: u32, frac_bits: u32) -> Self {
        assert!(
            int_bits + frac_bits > 0,
            "format must have at least one bit"
        );
        assert!(
            int_bits + frac_bits <= 61,
            "format too wide for i64 backing"
        );
        QFormat {
            int_bits,
            frac_bits,
            signed: true,
        }
    }

    /// Number of integer bits.
    #[inline]
    pub const fn int_bits(&self) -> u32 {
        self.int_bits
    }

    /// Number of fractional bits.
    #[inline]
    pub const fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Whether the format carries a sign bit.
    #[inline]
    pub const fn is_signed(&self) -> bool {
        self.signed
    }

    /// Total storage width in bits (including the sign bit if any) — what a
    /// BRAM word must hold.
    #[inline]
    pub const fn total_bits(&self) -> u32 {
        self.int_bits + self.frac_bits + self.signed as u32
    }

    /// Value of one least-significant bit: `2^-frac_bits`.
    #[inline]
    pub fn resolution(&self) -> f64 {
        // 2^-n assembled directly from the exponent field: identical to
        // `(-n).exp2()` for every normal power of two (both are exact),
        // but a couple of integer ops instead of a libm call — this sits
        // under `Fixed::to_f64` in the delay-generation hot loops.
        if self.frac_bits <= 1022 {
            f64::from_bits(u64::from(1023 - self.frac_bits) << 52)
        } else {
            (-(self.frac_bits as f64)).exp2()
        }
    }

    /// Largest representable raw integer.
    #[inline]
    pub const fn max_raw(&self) -> i64 {
        (1i64 << (self.int_bits + self.frac_bits)) - 1
    }

    /// Smallest representable raw integer (0 for unsigned formats).
    #[inline]
    pub const fn min_raw(&self) -> i64 {
        if self.signed {
            -(1i64 << (self.int_bits + self.frac_bits))
        } else {
            0
        }
    }

    /// Largest representable value.
    #[inline]
    pub fn max_value(&self) -> f64 {
        self.max_raw() as f64 * self.resolution()
    }

    /// Smallest representable value.
    #[inline]
    pub fn min_value(&self) -> f64 {
        self.min_raw() as f64 * self.resolution()
    }

    /// Whether every value of `other` is exactly representable in `self`
    /// (at least as many fractional bits, at least as wide an integer
    /// range, and not dropping a needed sign bit).
    pub fn can_hold(&self, other: &QFormat) -> bool {
        self.frac_bits >= other.frac_bits
            && (self.signed || !other.signed)
            && self.max_value() >= other.max_value()
            && self.min_value() <= other.min_value()
    }

    /// A format able to hold the exact sum of values in `a` and `b`: max
    /// fractional bits, max integer bits + 1 (carry), signed if either is.
    #[inline]
    pub fn sum_format(a: QFormat, b: QFormat) -> QFormat {
        let int_bits = a.int_bits.max(b.int_bits) + 1;
        let frac_bits = a.frac_bits.max(b.frac_bits);
        if a.signed || b.signed {
            QFormat::signed(int_bits, frac_bits)
        } else {
            QFormat::unsigned(int_bits, frac_bits)
        }
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}.{}",
            if self.signed { "s" } else { "u" },
            self.int_bits,
            self.frac_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_have_18_and_14_bit_widths() {
        assert_eq!(QFormat::REF_18.total_bits(), 18);
        assert_eq!(QFormat::CORR_18.total_bits(), 18);
        assert_eq!(QFormat::REF_14.total_bits(), 14);
        assert_eq!(QFormat::CORR_14.total_bits(), 14);
        assert_eq!(QFormat::INT_13.total_bits(), 13);
    }

    #[test]
    fn resolution_is_power_of_two() {
        assert_eq!(QFormat::REF_18.resolution(), 1.0 / 32.0);
        assert_eq!(QFormat::CORR_18.resolution(), 1.0 / 16.0);
        assert_eq!(QFormat::INT_13.resolution(), 1.0);
    }

    #[test]
    fn ranges() {
        let u = QFormat::unsigned(3, 1); // 0 .. 7.5
        assert_eq!(u.min_value(), 0.0);
        assert_eq!(u.max_value(), 7.5);
        let s = QFormat::signed(3, 1); // -8.0 .. 7.5
        assert_eq!(s.min_value(), -8.0);
        assert_eq!(s.max_value(), 7.5);
    }

    #[test]
    fn ref18_covers_echo_buffer() {
        // 13 integer bits address 8192 sample slots — enough for the
        // "slightly more than 8000 samples" echo window.
        assert!(QFormat::REF_18.max_value() >= 8000.0);
    }

    #[test]
    fn can_hold_rules() {
        assert!(QFormat::signed(14, 5).can_hold(&QFormat::REF_18));
        assert!(QFormat::signed(14, 5).can_hold(&QFormat::CORR_18));
        // Fewer fractional bits cannot hold more.
        assert!(!QFormat::REF_14.can_hold(&QFormat::REF_18));
        // Unsigned cannot hold signed.
        assert!(!QFormat::unsigned(14, 5).can_hold(&QFormat::CORR_18));
    }

    #[test]
    fn sum_format_holds_extremes() {
        let s = QFormat::sum_format(QFormat::REF_18, QFormat::CORR_18);
        assert!(s.is_signed());
        assert!(s.max_value() >= QFormat::REF_18.max_value() + QFormat::CORR_18.max_value());
        assert!(s.min_value() <= QFormat::CORR_18.min_value());
    }

    #[test]
    fn display_format() {
        assert_eq!(QFormat::REF_18.to_string(), "u13.5");
        assert_eq!(QFormat::CORR_18.to_string(), "s13.4");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_format_rejected() {
        QFormat::unsigned(0, 0);
    }
}
