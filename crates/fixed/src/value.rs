//! Fixed-point values and arithmetic.

use crate::QFormat;
use std::error::Error;
use std::fmt;

/// How a real value is quantized onto a fixed-point grid (or a fixed-point
/// value onto the integer sample grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// Round to nearest, ties away from zero (`f64::round`).
    Nearest,
    /// `floor(x + ½LSB)` — the hardware adder-plus-truncate round; ties go
    /// toward +∞. This is what the paper's datapaths implement.
    #[default]
    HalfUp,
    /// Round toward −∞ (truncation of the two's-complement word).
    Floor,
    /// Round toward zero.
    TowardZero,
}

impl RoundingMode {
    /// Applies the mode to a real number, returning an integer-valued f64.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            RoundingMode::Nearest => x.round(),
            RoundingMode::HalfUp => (x + 0.5).floor(),
            RoundingMode::Floor => x.floor(),
            RoundingMode::TowardZero => x.trunc(),
        }
    }
}

/// Errors from fixed-point construction and arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedError {
    /// The value does not fit the target format.
    Overflow {
        /// Format that overflowed.
        format: QFormat,
    },
    /// Two operands had incompatible formats for the requested operation.
    FormatMismatch {
        /// Left-hand format.
        lhs: QFormat,
        /// Right-hand format.
        rhs: QFormat,
    },
    /// The input was not a finite number.
    NotFinite,
}

impl fmt::Display for FixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedError::Overflow { format } => {
                write!(f, "value does not fit fixed-point format {format}")
            }
            FixedError::FormatMismatch { lhs, rhs } => {
                write!(f, "fixed-point format mismatch: {lhs} vs {rhs}")
            }
            FixedError::NotFinite => write!(f, "input value was not finite"),
        }
    }
}

impl Error for FixedError {}

/// A fixed-point value: a raw two's-complement integer interpreted through
/// a [`QFormat`].
///
/// ```
/// use usbf_fixed::{Fixed, QFormat, RoundingMode};
/// let f = QFormat::CORR_18; // signed 13.4
/// let a = Fixed::from_f64(-3.14159, f, RoundingMode::Nearest)?;
/// assert!((a.to_f64() + 3.125).abs() < 1e-12); // -3.14159 → -50/16
/// # Ok::<(), usbf_fixed::FixedError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixed {
    raw: i64,
    format: QFormat,
}

impl Fixed {
    /// The zero value in the given format.
    #[inline]
    pub fn zero(format: QFormat) -> Self {
        Fixed { raw: 0, format }
    }

    /// Builds a value from a raw integer (already scaled by `2^frac`).
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::Overflow`] if `raw` is outside the format's
    /// range.
    pub fn from_raw(raw: i64, format: QFormat) -> Result<Self, FixedError> {
        if raw < format.min_raw() || raw > format.max_raw() {
            return Err(FixedError::Overflow { format });
        }
        Ok(Fixed { raw, format })
    }

    /// Quantizes a real value into the format with the given rounding mode.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::NotFinite`] for NaN/∞ and
    /// [`FixedError::Overflow`] if the rounded value is out of range.
    pub fn from_f64(x: f64, format: QFormat, mode: RoundingMode) -> Result<Self, FixedError> {
        if !x.is_finite() {
            return Err(FixedError::NotFinite);
        }
        let scaled = mode.apply(x * (format.frac_bits() as f64).exp2());
        if scaled < format.min_raw() as f64 || scaled > format.max_raw() as f64 {
            return Err(FixedError::Overflow { format });
        }
        Ok(Fixed {
            raw: scaled as i64,
            format,
        })
    }

    /// Quantizes a real value, clamping to the format's range instead of
    /// failing (the behaviour of a saturating hardware register).
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn saturating_from_f64(x: f64, format: QFormat, mode: RoundingMode) -> Self {
        assert!(!x.is_nan(), "cannot quantize NaN");
        let scaled = mode.apply(x * (format.frac_bits() as f64).exp2());
        let raw = if scaled <= format.min_raw() as f64 {
            format.min_raw()
        } else if scaled >= format.max_raw() as f64 {
            format.max_raw()
        } else {
            scaled as i64
        };
        Fixed { raw, format }
    }

    /// The raw scaled integer.
    #[inline]
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The value's format.
    #[inline]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Converts back to floating point (exact: the backing i64 is within
    /// f64's 53-bit mantissa by construction).
    #[inline]
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * self.format.resolution()
    }

    /// Re-expresses the value in another format.
    ///
    /// Widening (more fractional bits, larger range) is exact; narrowing
    /// re-quantizes with `mode`.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::Overflow`] if the value is outside the target
    /// range.
    pub fn convert(&self, format: QFormat, mode: RoundingMode) -> Result<Self, FixedError> {
        let from = self.format.frac_bits();
        let to = format.frac_bits();
        let raw = if to >= from {
            self.raw << (to - from)
        } else {
            let shifted = self.raw as f64 / ((from - to) as f64).exp2();
            mode.apply(shifted) as i64
        };
        Fixed::from_raw(raw, format)
    }

    /// Adds two values, producing the exact sum in
    /// [`QFormat::sum_format`] — models a full-width hardware adder.
    #[inline]
    pub fn wide_add(&self, rhs: Fixed) -> Fixed {
        let fmt = QFormat::sum_format(self.format, rhs.format);
        let fa = fmt.frac_bits();
        let a = self.raw << (fa - self.format.frac_bits());
        let b = rhs.raw << (fa - rhs.format.frac_bits());
        Fixed {
            raw: a + b,
            format: fmt,
        }
    }

    /// Checked addition of two values in the *same* format.
    ///
    /// # Errors
    ///
    /// [`FixedError::FormatMismatch`] when the formats differ;
    /// [`FixedError::Overflow`] when the sum leaves the format's range.
    pub fn checked_add(&self, rhs: Fixed) -> Result<Fixed, FixedError> {
        if self.format != rhs.format {
            return Err(FixedError::FormatMismatch {
                lhs: self.format,
                rhs: rhs.format,
            });
        }
        Fixed::from_raw(self.raw + rhs.raw, self.format)
    }

    /// Saturating addition in the same format.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn saturating_add(&self, rhs: Fixed) -> Fixed {
        assert_eq!(
            self.format, rhs.format,
            "saturating_add requires equal formats"
        );
        let raw = (self.raw + rhs.raw).clamp(self.format.min_raw(), self.format.max_raw());
        Fixed {
            raw,
            format: self.format,
        }
    }

    /// Full-precision multiply: the raw product with summed fractional
    /// bits, re-quantized into `out` with `mode` — models a DSP multiplier
    /// feeding a narrower register.
    ///
    /// # Errors
    ///
    /// [`FixedError::Overflow`] if the product is outside `out`'s range.
    pub fn mul_into(
        &self,
        rhs: Fixed,
        out: QFormat,
        mode: RoundingMode,
    ) -> Result<Fixed, FixedError> {
        let prod = self.raw as i128 * rhs.raw as i128;
        let prod_frac = self.format.frac_bits() + rhs.format.frac_bits();
        let shift = prod_frac as i32 - out.frac_bits() as i32;
        let raw = if shift <= 0 {
            let wide = prod << (-shift as u32);
            if wide > i64::MAX as i128 || wide < i64::MIN as i128 {
                return Err(FixedError::Overflow { format: out });
            }
            wide as i64
        } else {
            let scaled = prod as f64 / (shift as f64).exp2();
            mode.apply(scaled) as i64
        };
        Fixed::from_raw(raw, out)
    }

    /// Rounds the value to an integer (sample index) with the given mode —
    /// the final stage of the delay datapath.
    #[inline]
    pub fn round_to_int(&self, mode: RoundingMode) -> i64 {
        mode.apply(self.to_f64()) as i64
    }

    /// Absolute quantization error committed when this value was built
    /// from `original`.
    #[inline]
    pub fn quantization_error(&self, original: f64) -> f64 {
        (self.to_f64() - original).abs()
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_modes_on_halves() {
        assert_eq!(RoundingMode::Nearest.apply(2.5), 3.0);
        assert_eq!(RoundingMode::Nearest.apply(-2.5), -3.0);
        assert_eq!(RoundingMode::HalfUp.apply(2.5), 3.0);
        assert_eq!(RoundingMode::HalfUp.apply(-2.5), -2.0);
        assert_eq!(RoundingMode::Floor.apply(-2.5), -3.0);
        assert_eq!(RoundingMode::TowardZero.apply(-2.5), -2.0);
    }

    #[test]
    fn from_f64_quantizes_within_half_lsb() {
        let fmt = QFormat::REF_18;
        for &x in &[0.0, 0.015625, 1234.5678, 8191.96875] {
            let f = Fixed::from_f64(x, fmt, RoundingMode::Nearest).unwrap();
            assert!(
                f.quantization_error(x) <= fmt.resolution() / 2.0 + 1e-15,
                "x = {x}"
            );
        }
    }

    #[test]
    fn overflow_detected() {
        let fmt = QFormat::unsigned(3, 1);
        assert!(Fixed::from_f64(8.0, fmt, RoundingMode::Nearest).is_err());
        assert!(Fixed::from_f64(-0.5, fmt, RoundingMode::Nearest).is_err());
        assert!(Fixed::from_f64(7.5, fmt, RoundingMode::Nearest).is_ok());
    }

    #[test]
    fn nan_and_infinity_rejected() {
        let fmt = QFormat::REF_18;
        assert_eq!(
            Fixed::from_f64(f64::NAN, fmt, RoundingMode::Nearest),
            Err(FixedError::NotFinite)
        );
        assert_eq!(
            Fixed::from_f64(f64::INFINITY, fmt, RoundingMode::Nearest),
            Err(FixedError::NotFinite)
        );
    }

    #[test]
    fn saturating_from_f64_clamps() {
        let fmt = QFormat::unsigned(3, 1);
        assert_eq!(
            Fixed::saturating_from_f64(100.0, fmt, RoundingMode::Nearest).to_f64(),
            7.5
        );
        assert_eq!(
            Fixed::saturating_from_f64(-5.0, fmt, RoundingMode::Nearest).to_f64(),
            0.0
        );
    }

    #[test]
    fn convert_widening_is_exact() {
        let a = Fixed::from_f64(12.25, QFormat::CORR_18, RoundingMode::Nearest).unwrap();
        let b = a
            .convert(QFormat::signed(14, 8), RoundingMode::Nearest)
            .unwrap();
        assert_eq!(b.to_f64(), 12.25);
    }

    #[test]
    fn convert_narrowing_requantizes() {
        let a = Fixed::from_f64(1.03125, QFormat::REF_18, RoundingMode::Nearest).unwrap();
        let b = a.convert(QFormat::REF_14, RoundingMode::Nearest).unwrap();
        assert_eq!(b.to_f64(), 1.0);
    }

    #[test]
    fn wide_add_mixed_formats_is_exact() {
        // Sign-extended sum of unsigned 13.5 reference and signed 13.4
        // correction — the §V-B datapath.
        let r = Fixed::from_f64(4000.5, QFormat::REF_18, RoundingMode::Nearest).unwrap();
        let c = Fixed::from_f64(-120.25, QFormat::CORR_18, RoundingMode::Nearest).unwrap();
        let s = r.wide_add(c);
        assert_eq!(s.to_f64(), 4000.5 - 120.25);
        assert!(s.format().is_signed());
    }

    #[test]
    fn checked_add_detects_mismatch_and_overflow() {
        let a = Fixed::from_f64(1.0, QFormat::REF_18, RoundingMode::Nearest).unwrap();
        let b = Fixed::from_f64(1.0, QFormat::CORR_18, RoundingMode::Nearest).unwrap();
        assert!(matches!(
            a.checked_add(b),
            Err(FixedError::FormatMismatch { .. })
        ));
        let big = Fixed::from_f64(8000.0, QFormat::REF_18, RoundingMode::Nearest).unwrap();
        assert!(matches!(
            big.checked_add(big),
            Err(FixedError::Overflow { .. })
        ));
    }

    #[test]
    fn saturating_add_clamps() {
        let fmt = QFormat::unsigned(3, 0);
        let a = Fixed::from_f64(6.0, fmt, RoundingMode::Nearest).unwrap();
        let b = Fixed::from_f64(5.0, fmt, RoundingMode::Nearest).unwrap();
        assert_eq!(a.saturating_add(b).to_f64(), 7.0);
    }

    #[test]
    fn mul_into_matches_float_product() {
        let a = Fixed::from_f64(3.25, QFormat::signed(8, 4), RoundingMode::Nearest).unwrap();
        let b = Fixed::from_f64(-2.5, QFormat::signed(8, 4), RoundingMode::Nearest).unwrap();
        let p = a
            .mul_into(b, QFormat::signed(16, 8), RoundingMode::Nearest)
            .unwrap();
        assert!((p.to_f64() - (3.25 * -2.5)).abs() <= QFormat::signed(16, 8).resolution());
    }

    #[test]
    fn round_to_int_final_stage() {
        let s = Fixed::from_f64(1234.4, QFormat::REF_18, RoundingMode::Nearest).unwrap();
        assert_eq!(s.round_to_int(RoundingMode::HalfUp), 1234);
        let s = Fixed::from_f64(1234.6, QFormat::REF_18, RoundingMode::Nearest).unwrap();
        assert_eq!(s.round_to_int(RoundingMode::HalfUp), 1235);
        // A value quantized onto an exact .5 grid point rounds up (HalfUp).
        let s = Fixed::from_f64(1234.5, QFormat::REF_18, RoundingMode::Nearest).unwrap();
        assert_eq!(s.round_to_int(RoundingMode::HalfUp), 1235);
    }

    #[test]
    fn display_nonempty() {
        let a = Fixed::zero(QFormat::REF_18);
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn from_raw_bounds() {
        let fmt = QFormat::signed(3, 1);
        assert!(Fixed::from_raw(fmt.max_raw(), fmt).is_ok());
        assert!(Fixed::from_raw(fmt.max_raw() + 1, fmt).is_err());
        assert!(Fixed::from_raw(fmt.min_raw(), fmt).is_ok());
        assert!(Fixed::from_raw(fmt.min_raw() - 1, fmt).is_err());
    }
}
