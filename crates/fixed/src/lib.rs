//! Q-format fixed-point arithmetic modeling the paper's FPGA datapaths.
//!
//! The TABLESTEER architecture (§V-B) stores reference delays in **13.5
//! unsigned** fixed point (13 integer bits address the ~8000-sample echo
//! buffer, 5 fractional bits), steering corrections in **signed 13.4**, and
//! sums them in hardware before rounding to an integer sample index. The
//! 14-bit variant keeps one (reference) / zero (correction) fractional bits.
//! This crate provides:
//!
//! * [`QFormat`] — a runtime description of a Q-format (signedness, integer
//!   and fractional bit counts) with the paper's presets,
//! * [`Fixed`] — a value in a given format, with checked/saturating
//!   arithmetic and explicit [`RoundingMode`]s,
//! * [`analysis`] — the §VI-A quantization experiment: the fraction of
//!   delay sums whose rounded index *flips* versus a double-precision
//!   computation (33 % for 13-bit integers, <2 % for 18-bit 13.5).
//!
//! # Example
//!
//! ```
//! use usbf_fixed::{Fixed, QFormat, RoundingMode};
//!
//! let fmt = QFormat::REF_18; // unsigned 13.5
//! let x = Fixed::from_f64(1234.56789, fmt, RoundingMode::Nearest)?;
//! assert!((x.to_f64() - 1234.56789).abs() <= fmt.resolution() / 2.0);
//! # Ok::<(), usbf_fixed::FixedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod format;
mod value;

pub use format::QFormat;
pub use value::{Fixed, FixedError, RoundingMode};
