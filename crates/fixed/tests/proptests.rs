//! Property-based invariants of the fixed-point substrate.

use proptest::prelude::*;
use usbf_fixed::{Fixed, QFormat, RoundingMode};

fn formats() -> impl Strategy<Value = QFormat> {
    (1u32..16, 0u32..10, any::<bool>()).prop_map(|(i, f, signed)| {
        if signed {
            QFormat::signed(i, f)
        } else {
            QFormat::unsigned(i, f)
        }
    })
}

proptest! {
    #[test]
    fn quantization_error_at_most_half_lsb(
        fmt in formats(),
        frac in 0.0f64..1.0,
    ) {
        // A value inside the representable range quantizes within ½ LSB.
        let x = fmt.min_value() + (fmt.max_value() - fmt.min_value()) * frac;
        let q = Fixed::from_f64(x, fmt, RoundingMode::Nearest).expect("in range");
        prop_assert!(q.quantization_error(x) <= fmt.resolution() / 2.0 + 1e-15);
    }

    #[test]
    fn roundtrip_is_identity_on_grid(
        fmt in formats(),
        raw_frac in 0.0f64..1.0,
    ) {
        let span = (fmt.max_raw() - fmt.min_raw()) as f64;
        let raw = fmt.min_raw() + (span * raw_frac) as i64;
        let v = Fixed::from_raw(raw, fmt).expect("in range");
        let rt = Fixed::from_f64(v.to_f64(), fmt, RoundingMode::Nearest).expect("in range");
        prop_assert_eq!(rt.raw(), raw);
    }

    #[test]
    fn wide_add_is_exact(
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
    ) {
        let fa = QFormat::REF_18;
        let fb = QFormat::CORR_18;
        let a = Fixed::saturating_from_f64(fa.max_value() * a_frac, fa, RoundingMode::Nearest);
        let b = Fixed::saturating_from_f64(
            fb.min_value() + (fb.max_value() - fb.min_value()) * b_frac,
            fb,
            RoundingMode::Nearest,
        );
        let s = a.wide_add(b);
        prop_assert!((s.to_f64() - (a.to_f64() + b.to_f64())).abs() < 1e-12);
    }

    #[test]
    fn saturating_from_never_leaves_range(
        fmt in formats(),
        x in -1e9f64..1e9,
    ) {
        let q = Fixed::saturating_from_f64(x, fmt, RoundingMode::HalfUp);
        prop_assert!(q.to_f64() >= fmt.min_value() - 1e-15);
        prop_assert!(q.to_f64() <= fmt.max_value() + 1e-15);
    }

    #[test]
    fn quantization_is_monotone(
        fmt in formats(),
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
    ) {
        let lo = fmt.min_value();
        let hi = fmt.max_value();
        let a = lo + (hi - lo) * a_frac.min(b_frac);
        let b = lo + (hi - lo) * a_frac.max(b_frac);
        let qa = Fixed::from_f64(a, fmt, RoundingMode::Nearest).expect("in range");
        let qb = Fixed::from_f64(b, fmt, RoundingMode::Nearest).expect("in range");
        prop_assert!(qa.raw() <= qb.raw());
    }

    #[test]
    fn convert_widening_preserves_value(
        int_bits in 2u32..10,
        frac_bits in 0u32..6,
        extra in 1u32..6,
        frac in 0.0f64..1.0,
    ) {
        let narrow = QFormat::signed(int_bits, frac_bits);
        let wide = QFormat::signed(int_bits + 1, frac_bits + extra);
        let x = narrow.min_value() + (narrow.max_value() - narrow.min_value()) * frac;
        let q = Fixed::from_f64(x, narrow, RoundingMode::Nearest).expect("in range");
        let w = q.convert(wide, RoundingMode::Nearest).expect("widening fits");
        prop_assert_eq!(w.to_f64(), q.to_f64());
    }

    #[test]
    fn rounding_modes_agree_off_ties(
        fmt in formats(),
        frac in 0.001f64..0.999,
    ) {
        // Away from exact .5 ties, Nearest and HalfUp agree.
        let lo = fmt.min_value();
        let hi = fmt.max_value();
        let x = lo + (hi - lo) * frac;
        // Nudge off any representable tie point.
        let x = x + fmt.resolution() * 0.123;
        if x <= hi {
            let a = Fixed::saturating_from_f64(x, fmt, RoundingMode::Nearest);
            let b = Fixed::saturating_from_f64(x, fmt, RoundingMode::HalfUp);
            prop_assert!((a.raw() - b.raw()).abs() <= 1);
        }
    }
}
