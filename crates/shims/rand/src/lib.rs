//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! exact API subset the workspace uses — `rngs::StdRng`, `SeedableRng::
//! seed_from_u64` and `Rng::random_range` over float/integer ranges —
//! backed by SplitMix64. It is deterministic per seed (which the
//! simulators rely on) but is **not** the real `StdRng` stream and is not
//! cryptographically secure. Swap the workspace `rand` entry back to
//! crates.io to get the real thing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniform draw from `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xorshift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0f64..1.0), b.random_range(0.0f64..1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.random_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.random_range(0.0..1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&v));
            let w = rng.random_range(0.5f64..=1.5);
            assert!((0.5..=1.5).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(2015);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
