//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the API subset the workspace's property tests use: the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]`), range / tuple /
//! [`any`](strategy::any) strategies,
//! [`Strategy::prop_map`](strategy::Strategy::prop_map), and the
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimized;
//! * **deterministic** — cases derive from a fixed seed, so runs are
//!   reproducible (and CI is stable);
//! * default case count is 64 (override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`).

#![forbid(unsafe_code)]

use std::fmt;

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case, mirroring `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

pub mod test_runner {
    //! The deterministic random source driving case generation.

    /// SplitMix64 generator seeded per (fixed seed, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` of a property.
        pub fn for_case(case: u32) -> Self {
            // Fixed seed: runs are reproducible by construction.
            TestRng {
                state: 0x5EED_DA7E_2015_u64 ^ ((case as u64) << 32 | case as u64),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values, mirroring
    /// `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            v.min(self.end - (self.end - self.start) * f64::EPSILON)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Types with a canonical "any value" strategy, mirroring
    /// `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full value range of `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

/// Defines deterministic property tests; see the crate docs for the
/// differences from real proptest.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = __result {
                        panic!("property {} failed at case {}: {}",
                               stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}

/// Asserts within a [`proptest!`] body, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = &$left;
        let r = &$right;
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (0usize..10).generate(&mut rng);
            assert!(v < 10);
            let (a, b) = ((1u32..5), (0.0f64..1.0)).generate(&mut rng);
            assert!((1..5).contains(&a) && (0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        let s = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = crate::test_runner::TestRng::for_case(2);
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(a in 0usize..100, b in 0.0f64..1.0) {
            prop_assert!(a < 100, "a = {}", a);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a, a);
        }
    }

    // A deliberately failing property, generated without `#[test]` so it
    // only runs when driven by the should-panic test below.
    proptest! {
        fn always_fails(v in 0usize..10) {
            prop_assert!(v > 100, "v = {}", v);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        always_fails();
    }
}
