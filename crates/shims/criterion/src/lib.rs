//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, `BatchSize` and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop:
//! a short warm-up, then timed batches until the measurement budget is
//! spent, reporting the per-iteration mean, min and max and (when a
//! throughput is configured) elements per second.
//!
//! Environment knobs:
//!
//! * `USBF_BENCH_MEASURE_MS` — measurement budget per benchmark
//!   (default 1000);
//! * `USBF_BENCH_WARMUP_MS` — warm-up budget (default 200).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Input-size declaration used to scale reported rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How batched inputs are sized (accepted for API compatibility; the shim
/// always re-runs setup per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters: u64,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// Per-benchmark timing driver, mirroring `criterion::Bencher`.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    sample: Option<Sample>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for ~50 timed batches within the measurement budget.
        let batch = ((self.measure.as_secs_f64() / 50.0 / per_iter.max(1e-9)) as u64).max(1);
        let mut iters: u64 = 0;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < self.measure {
            let batch_start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = batch_start.elapsed().div_f64(batch as f64);
            min = min.min(elapsed);
            max = max.max(elapsed);
            iters += batch;
        }
        let mean = start.elapsed().div_f64(iters.max(1) as f64);
        self.sample = Some(Sample {
            mean,
            min,
            max,
            iters,
        });
    }

    /// Times `routine` with a fresh `setup()` input per call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut iters: u64 = 0;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        while total < self.measure {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            let elapsed = t.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
            iters += 1;
        }
        let mean = total.div_f64(iters.max(1) as f64);
        self.sample = Some(Sample {
            mean,
            min,
            max,
            iters,
        });
    }
}

/// A named set of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration input size for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; use `USBF_BENCH_MEASURE_MS`.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, self.throughput, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a plain argument.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion {
            warmup: env_ms("USBF_BENCH_WARMUP_MS", 200),
            measure: env_ms("USBF_BENCH_MEASURE_MS", 1000),
            filter,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility with `criterion_group!` expansions.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs and reports one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, None, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            sample: None,
        };
        f(&mut b);
        match b.sample {
            None => println!("{id:<48} (no measurement: bencher not driven)"),
            Some(s) => {
                let mut line = format!(
                    "{id:<48} time: [{} {} {}]",
                    fmt_duration(s.min),
                    fmt_duration(s.mean),
                    fmt_duration(s.max)
                );
                if let Some(t) = throughput {
                    let secs = s.mean.as_secs_f64();
                    let rate = match t {
                        Throughput::Elements(n) => fmt_rate(n as f64 / secs, "elem"),
                        Throughput::Bytes(n) => fmt_rate(n as f64 / secs, "B"),
                    };
                    line.push_str(&format!("  thrpt: [{rate}]"));
                }
                line.push_str(&format!("  ({} iters)", s.iters));
                println!("{line}");
            }
        }
    }
}

/// Declares a group function running each target, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            filter: None,
        }
    }

    #[test]
    fn iter_produces_a_sample() {
        let mut c = fast_criterion();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.finish();
    }

    #[test]
    fn iter_batched_produces_a_sample() {
        let mut c = fast_criterion();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
    }

    #[test]
    fn formatting_is_sane() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500.0 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).contains("ms"));
        assert!(fmt_rate(2.5e9, "elem").starts_with("2.500 G"));
        assert!(fmt_rate(1.0, "elem").contains("1.0 elem/s"));
    }
}
