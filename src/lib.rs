//! # usbf — 3D ultrasound beamforming delay generation
//!
//! A reproduction of the DATE 2015 paper *"Tackling the Bottleneck of Delay
//! Tables in 3D Ultrasound Imaging"* (Ibrahim, Hager, Bartolini, Angiolini,
//! Arditi, Benini, De Micheli).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geometry`] — probes, imaging volumes, scan orders (Table I, Fig. 1);
//! * [`fixed`] — Q-format fixed-point arithmetic;
//! * [`pwl`] — piecewise-linear √ approximation with segment tracking (Fig. 2);
//! * [`tables`] — reference delay tables, symmetry folding, steering (Fig. 3);
//! * [`core`] — the delay engines: TABLEFREE and TABLESTEER (§IV, §V);
//! * [`sim`] — synthetic acoustic echoes and image-quality metrics;
//! * [`beamform`] — delay-and-sum beamforming over any engine, plus the
//!   real-time [`VolumeLoop`](beamform::VolumeLoop) frame loop;
//! * [`fpga`] — the Virtex-7 resource/timing model behind Table II;
//! * [`par`] — the persistent worker-pool runtime the parallel paths run on.
//!
//! See `ARCHITECTURE.md` at the repository root for the map from crates
//! and modules to the paper's sections.
//!
//! # Quickstart
//!
//! ```
//! use usbf::geometry::{SystemSpec, VoxelIndex};
//! use usbf::core::{DelayEngine, ExactEngine, TableSteerEngine, TableSteerConfig};
//!
//! let spec = SystemSpec::tiny();
//! let exact = ExactEngine::new(&spec);
//! let steer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
//! let vox = VoxelIndex::new(4, 4, 8);
//! let e = spec.elements.center_element();
//! let t_exact = exact.delay_samples(vox, e);
//! let t_steer = steer.delay_samples(vox, e);
//! assert!((t_exact - t_steer).abs() < 4.0); // within a few samples near axis
//! ```
//!
//! Delays are consumed in bulk, one nappe slab at a time — the paper's
//! streaming granularity and the hot path of the batched beamformer:
//!
//! ```
//! use usbf::core::{DelayEngine, NappeDelays, TableSteerEngine, TableSteerConfig};
//! use usbf::geometry::{SystemSpec, VoxelIndex};
//!
//! let spec = SystemSpec::tiny();
//! let steer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
//! let mut slab = NappeDelays::full(&spec);
//! steer.fill_nappe(8, &mut slab);
//! let e = spec.elements.center_element();
//! // Batched fills are bit-exact with scalar queries.
//! assert_eq!(slab.at(4, 4, e), steer.delay_samples(VoxelIndex::new(4, 4, 8), e));
//! ```

#![forbid(unsafe_code)]

pub use usbf_beamform as beamform;
pub use usbf_core as core;
pub use usbf_fixed as fixed;
pub use usbf_fpga as fpga;
pub use usbf_geometry as geometry;
pub use usbf_par as par;
pub use usbf_pwl as pwl;
pub use usbf_sim as sim;
pub use usbf_tables as tables;
