//! The §V-B streaming design walked end to end: memory budget, circular
//! BRAM buffer, DRAM bandwidth, and the nappe-order table walk that makes
//! it work.
//!
//! Run with: `cargo run --release --example streaming_nappe`

use usbf::core::{
    DelayEngine, NappeDelays, NappeSchedule, SteerBlockSpec, TableSteerConfig, TableSteerEngine,
};
use usbf::geometry::scan::ScanOrder;
use usbf::geometry::SystemSpec;
use usbf::tables::{InsonificationPlan, ReferenceTable, SliceWindow, StreamingPlan, TableBudget};

fn main() {
    let spec = SystemSpec::paper();
    let budget = TableBudget::for_spec(&spec, 18, 18);
    println!("=== TABLESTEER memory budget (§V-B, 18-bit words) ===");
    println!(
        "reference table   : {} entries = {:.1} Mb",
        budget.reference_entries,
        budget.reference_megabits()
    );
    println!(
        "corrections       : {} coefficients = {:.2} Mib",
        budget.correction_entries,
        budget.correction_mebibits()
    );
    println!(
        "fully resident    : {:.1} Mb total (Virtex-7 BRAM capacity: 67.7 Mb) → fits: {}",
        budget.total_bits() as f64 / 1e6,
        budget.fits_on_chip(67_700_000)
    );

    let plan = InsonificationPlan::paper();
    let insonif = plan.insonifications_per_second(spec.frame_rate);
    let stream = StreamingPlan::paper();
    println!("\n=== Streaming alternative ===");
    println!(
        "acquisition       : {} insonifications/volume x {} scanlines = {} insonif/s at {} fps",
        plan.insonifications_per_volume,
        plan.scanlines_per_insonification,
        insonif,
        spec.frame_rate
    );
    println!(
        "on-chip buffer    : {} banks x {} words x {} bits = {:.2} Mb (vs {:.0} Mb resident)",
        stream.bram_banks,
        stream.bank_words,
        stream.word_bits,
        stream.on_chip_bits() as f64 / 1e6,
        budget.reference_megabits()
    );
    println!(
        "DRAM bandwidth    : {:.2} GB/s (paper: ~5.3 GB/s)",
        stream.dram_bandwidth_bytes(&budget, insonif) / 1e9
    );
    println!(
        "refill margin     : {} cycles per bank",
        stream.latency_margin_cycles()
    );

    let block = SteerBlockSpec::paper();
    println!("\n=== Fig. 4 block structure ===");
    println!(
        "{} blocks x ({}x{} corrections) = {} steered delays/cycle/block, {} adders/block",
        block.n_blocks,
        block.x_per_cycle,
        block.y_per_cycle,
        block.points_per_cycle_per_block(),
        block.adders_per_block()
    );
    println!(
        "peak throughput   : {:.2} Tdelays/s at 200 MHz → {:.1} volumes/s",
        block.delays_per_second(200.0e6) / 1e12,
        block.frame_rate(200.0e6, &spec)
    );

    // Demonstrate the locality property that justifies streaming: in nappe
    // order, consecutive focal points hit the same depth slice of the
    // reference table, so each slice is fetched exactly once per frame.
    let small = SystemSpec::tiny();
    let table = ReferenceTable::build(&small);
    let mut slice_switches = 0u32;
    let mut last_depth = usize::MAX;
    for vox in ScanOrder::NappeByNappe.iter(&small.volume_grid) {
        if vox.id != last_depth {
            slice_switches += 1;
            last_depth = vox.id;
        }
    }
    println!("\n=== Nappe-order locality (tiny geometry) ===");
    println!(
        "depth-slice switches in nappe order   : {} (= {} nappes: each slice loaded once)",
        slice_switches,
        table.n_depth()
    );
    let mut scanline_switches = 0u32;
    last_depth = usize::MAX;
    for vox in ScanOrder::ScanlineByScanline.iter(&small.volume_grid) {
        if vox.id != last_depth {
            scanline_switches += 1;
            last_depth = vox.id;
        }
    }
    println!(
        "depth-slice switches in scanline order: {} ({}x more table walking)",
        scanline_switches,
        scanline_switches / slice_switches
    );

    // The same locality, measured through the circular buffer's residency
    // window: a nappe-major consumer fetches each slice exactly once; a
    // scanline-major consumer refetches evicted slices at every restart.
    let mut nappe_window = SliceWindow::paper();
    for vox in ScanOrder::NappeByNappe.iter(&small.volume_grid) {
        nappe_window.access(vox.id);
    }
    let mut scanline_window = SliceWindow::paper();
    for vox in ScanOrder::ScanlineByScanline.iter(&small.volume_grid) {
        scanline_window.access(vox.id);
    }
    println!(
        "window fetches, nappe order           : {} (clean: {})",
        nappe_window.fetches(),
        nappe_window.streaming_clean()
    );
    println!(
        "window fetches, scanline order        : {} ({} refetches)",
        scanline_window.fetches(),
        scanline_window.refetches()
    );

    // And the consumer side of that stream: the batched delay pipeline.
    // Each schedule tile owns a per-nappe slab filled by fill_nappe —
    // TABLESTEER reads exactly one reference slice per slab, which is
    // what the circular buffer above feeds.
    let engine = TableSteerEngine::new(&small, TableSteerConfig::bits18()).expect("builds");
    let schedule = NappeSchedule::fitted(&small, 4);
    println!("\n=== Batched slab consumption (tiny geometry) ===");
    println!(
        "schedule          : {} tiles of {} scanlines",
        schedule.n_blocks(),
        schedule.tile_of(0).scanlines()
    );
    let mut slab = NappeDelays::for_tile(&small, schedule.tile_of(0));
    let mut checked = 0u32;
    for id in 0..small.volume_grid.n_depth() {
        engine.fill_nappe(id, &mut slab);
        for (_, it, ip) in slab.scanlines() {
            for e in small.elements.iter() {
                let vox = usbf::geometry::VoxelIndex::new(it, ip, id);
                assert_eq!(slab.at(it, ip, e), engine.delay_samples(vox, e));
                checked += 1;
            }
        }
    }
    println!(
        "slab vs scalar    : {checked} delays across {} nappes, all bit-exact",
        small.volume_grid.n_depth()
    );
}
