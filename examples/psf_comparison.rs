//! Point-spread-function comparison: how delay-architecture error shows up
//! in a beamformed image.
//!
//! A point scatterer is placed exactly on a focal-grid voxel; the axial
//! and lateral profiles through it are beamformed with the exact,
//! TABLEFREE and TABLESTEER delay engines and compared (peak position,
//! FWHM, normalized RMSE against the exact image).
//!
//! Run with: `cargo run --release --example psf_comparison`

use usbf::beamform::{Apodization, Beamformer};
use usbf::core::{
    DelayEngine, ExactEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf::geometry::{SystemSpec, VoxelIndex};
use usbf::sim::{metrics, EchoSynthesizer, Phantom, Pulse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SystemSpec::reduced();
    let vox = VoxelIndex::new(spec.volume.n_theta / 2, spec.volume.n_phi / 2, 64);
    let target = spec.volume_grid.position(vox);
    println!(
        "point target at θ-line {}, φ-line {}, depth {:.1} mm",
        vox.it,
        vox.ip,
        spec.volume_grid.depth_of(vox.id) * 1e3
    );

    let rf =
        EchoSynthesizer::new(&spec).synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
    println!(
        "synthesized RF: {} elements x {} samples\n",
        rf.n_elements(),
        rf.n_samples()
    );

    let exact = ExactEngine::new(&spec);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper())?;
    let tablesteer18 = TableSteerEngine::new(&spec, TableSteerConfig::bits18())?;
    let tablesteer14 = TableSteerEngine::new(&spec, TableSteerConfig::bits14())?;
    let bf = Beamformer::new(&spec).with_apodization(Apodization::Hann);

    let axial_exact = bf.beamform_scanline(&exact, &rf, vox.it, vox.ip);
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "engine", "peak depth", "axial FWHM", "peak ratio", "NRMSE"
    );
    let engines: [(&str, &dyn DelayEngine); 4] = [
        ("EXACT", &exact),
        ("TABLEFREE", &tablefree),
        ("TABLESTEER-18b", &tablesteer18),
        ("TABLESTEER-14b", &tablesteer14),
    ];
    for (label, eng) in engines {
        let axial = bf.beamform_scanline(eng, &rf, vox.it, vox.ip);
        let peak = metrics::peak_index(&axial);
        let width = metrics::fwhm(&axial) * spec.volume_grid.depth_step() * 1e3;
        let ratio = axial[peak].abs() / axial_exact[metrics::peak_index(&axial_exact)].abs();
        let nrmse = metrics::nrmse(&axial_exact, &axial);
        println!(
            "{:<16} {:>7} ({:>4.1} mm) {:>9.3} mm {:>12.3} {:>12.4}",
            label,
            peak,
            spec.volume_grid.depth_of(peak) * 1e3,
            width,
            ratio,
            nrmse
        );
    }

    println!("\nlateral (θ) profile through the target:");
    let lat_exact = bf_lateral(&bf, &exact, &rf, &spec, vox);
    for (name, eng) in [
        ("EXACT", &exact as &dyn DelayEngine),
        ("TABLEFREE", &tablefree),
        ("TABLESTEER-18b", &tablesteer18),
    ] {
        let lat = bf_lateral(&bf, eng, &rf, &spec, vox);
        println!(
            "{:<16} peak θ-line {:>3}, lateral FWHM {:.2} lines, NRMSE {:.4}",
            name,
            metrics::peak_index(&lat),
            metrics::fwhm(&lat),
            metrics::nrmse(&lat_exact, &lat)
        );
    }
    Ok(())
}

fn bf_lateral(
    bf: &Beamformer,
    eng: &dyn DelayEngine,
    rf: &usbf::sim::RfFrame,
    spec: &SystemSpec,
    vox: VoxelIndex,
) -> Vec<f64> {
    (0..spec.volume.n_theta)
        .map(|it| bf.beamform_voxel(eng, rf, VoxelIndex::new(it, vox.ip, vox.id)))
        .collect()
}
