//! Real-time asynchronous pipeline demo: a target moving through the
//! volume is acquired and beamformed continuously, with acquisition of
//! frame `n+1`, beamforming of frame `n` and "display" of volume `n−1`
//! overlapped through the submit/ticket API.
//!
//! Run with: `cargo run --release --example realtime_pipeline`

use std::sync::Arc;
use std::time::Instant;
use usbf::beamform::{Beamformer, FramePipeline, SynthesizedFrames, VolumeLoop};
use usbf::core::{TableSteerConfig, TableSteerEngine};
use usbf::geometry::{SystemSpec, VoxelIndex};
use usbf::sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

fn main() {
    let spec = SystemSpec::tiny();
    let engine =
        Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("engine builds"));
    let pulse = Pulse::from_spec(&spec);

    // A point target sweeping down one scanline: one phantom per frame.
    let phantoms: Vec<Phantom> = (2..14)
        .map(|id| Phantom::point(spec.volume_grid.position(VoxelIndex::new(4, 4, id))))
        .collect();
    let n_frames = 60usize;

    println!(
        "== realtime_pipeline: {} frames, TABLESTEER, tiny spec ==",
        n_frames
    );

    // Serial reference: acquire, then beamform, on one thread.
    let synth = EchoSynthesizer::new(&spec);
    let mut serial_loop = VolumeLoop::new(Beamformer::new(&spec));
    let mut rf = RfFrame::zeros(
        spec.elements.nx(),
        spec.elements.ny(),
        spec.echo_buffer_len(),
    );
    let mut serial_peaks = Vec::with_capacity(n_frames);
    let serial_start = Instant::now();
    for i in 0..n_frames {
        synth.synthesize_into(&phantoms[i % phantoms.len()], &pulse, &mut rf);
        let vol = serial_loop.beamform(engine.as_ref(), &rf);
        serial_peaks.push(vol.argmax());
    }
    let serial_elapsed = serial_start.elapsed();

    // Asynchronous pipeline: same frames, same engine, same pool size.
    // Each step submits frame n (beamforming starts on the pool, frame
    // n+1 starts acquiring) and "displays" frame n−1 from the ticket
    // while n is still in flight — the three-stage overlap.
    let source = SynthesizedFrames::new(EchoSynthesizer::new(&spec), pulse, phantoms.clone());
    let mut pipe = FramePipeline::new(Beamformer::new(&spec), engine, source);
    let mut pipe_peaks = Vec::with_capacity(n_frames);
    let mut displayed = 0usize;
    for _ in 0..n_frames {
        let ticket = pipe.submit().expect("healthy acquisition");
        // Caller-side consumption of the previous volume, overlapped
        // with the in-flight beamforming of the current one.
        if let Some(prev) = ticket.previous_volume() {
            let _ = prev.max_abs();
            displayed += 1;
        }
        let vol = ticket.wait().expect("healthy beamforming");
        pipe_peaks.push(vol.argmax());
    }
    let stats = pipe.stats();

    assert_eq!(
        serial_peaks, pipe_peaks,
        "pipelined volumes track the same target"
    );
    println!(
        "target swept {} -> {} (peak voxel per frame, identical in both modes)",
        serial_peaks[0],
        serial_peaks[phantoms.len() - 1]
    );
    println!(
        "serial    : {:8.1} frames/s  ({:.2?} total)",
        n_frames as f64 / serial_elapsed.as_secs_f64(),
        serial_elapsed
    );
    println!(
        "pipelined : {:8.1} frames/s  ({:.2?} total, {} frames, {} errors, {} volumes displayed mid-flight)",
        stats.frames_per_second(),
        stats.wall,
        stats.frames,
        stats.errors,
        displayed
    );
    println!(
        "            mean acquire wait {:.2?}, mean beamform (redemption) wait {:.2?}, overlap fraction {:.2}",
        stats.mean_acquire_wait(),
        stats.mean_beamform_wait(),
        stats.overlap_fraction()
    );
    println!(
        "            {} schedule tiles per frame, zero heap allocations on warm frames (see tests/warm_frame_allocs.rs)",
        pipe.tile_count()
    );
    println!(
        "(with purely CPU-bound acquisition the two modes tie on a single core; the overlap pays \
         once the front end has real acquisition latency or a second core exists — see \
         bench_pipeline and bench_shard)"
    );
}
