//! Coherent plane-wave compounding demo: a 16-angle steered fan
//! acquired and beamformed as ONE compound frame through the warm
//! `FramePipeline`, with the factored delay-generation stages (the
//! transmit-invariant receive leg vs the per-transmit combine vs the
//! quantize/gather/MAC back end) timed individually on one tile.
//!
//! Run with: `cargo run --release --example cpwc_compound`

use std::sync::Arc;
use std::time::Instant;
use usbf::beamform::{Beamformer, FramePipeline, FrameRing, TileState};
use usbf::core::{DelayEngine, ExactEngine, NappeDelays, NappeSchedule};
use usbf::geometry::{deg, SystemSpec, TransmitModel, VolumeSpec, VoxelIndex};
use usbf::sim::{EchoSynthesizer, Phantom, Pulse};

const N_ANGLES: usize = 16;
const FRAMES: usize = 50;

/// Tiny-scale CPWC geometry: a narrow cone (±4° over 60λ) whose voxels
/// sit inside the plane-wave footprints, carrying a 16-wave fan over
/// ±10° (the same shape the cpwc benches measure).
fn cpwc_spec(n_angles: usize) -> SystemSpec {
    let reference = SystemSpec::tiny();
    let lambda = reference.wavelength();
    SystemSpec::new(
        reference.speed_of_sound,
        reference.sampling_frequency,
        reference.transducer.clone(),
        VolumeSpec {
            theta_max: deg(4.0),
            phi_max: deg(4.0),
            depth_max: 60.0 * lambda,
            ..reference.volume.clone()
        },
        reference.origin,
        reference.frame_rate,
    )
    .with_transmits(TransmitModel::plane_wave_fan(n_angles, deg(10.0)))
}

/// Mean seconds per call of `f` over a fixed wall budget.
fn time_mean(budget_s: f64, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_secs_f64() < budget_s || iters < 2 {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let spec = cpwc_spec(N_ANGLES);
    let grid = &spec.volume_grid;
    let target_vox = VoxelIndex::new(grid.n_theta() / 2, grid.n_phi() / 2, grid.n_depth() * 5 / 8);
    let rf = EchoSynthesizer::new(&spec).synthesize(
        &Phantom::point(grid.position(target_vox)),
        &Pulse::from_spec(&spec),
    );
    let engine = ExactEngine::new(&spec);
    println!(
        "== cpwc_compound: {N_ANGLES}-angle plane-wave fan, {} voxels, EXACT ==",
        grid.voxel_count()
    );

    // --- Per-stage split on one tile, single-threaded: peel the
    // factored loop apart through the public engine API. The receive
    // leg is filled ONCE per nappe regardless of the angle count; only
    // the combine and the gather/MAC scale with N. ---
    assert!(engine.supports_factored_fill());
    let bf = Beamformer::new(&spec);
    let tile = NappeSchedule::fitted(&spec, 16).tiles()[5];
    let n_depth = grid.n_depth();
    let n_tx = spec.n_transmits();
    let mut slab = NappeDelays::for_tile(&spec, tile);
    let mut tx_row = vec![0.0; spec.elements.count()];
    let budget = 0.2;
    let fill_s = time_mean(budget, || {
        for id in 0..n_depth {
            engine.fill_nappe_rx_streamed(id, &mut slab, &mut |_, _| {});
        }
        std::hint::black_box(slab.samples()[0]);
    });
    // Mirror the kernel's masked-transmit skip: EXACT has no rounding
    // telemetry, so the factored loop never combines a (voxel, transmit)
    // pair outside that wave's footprint. Precompute the mask the way
    // `TileState` does so the peel times only combine work.
    let skip_masked = !engine.rounding_telemetry();
    let n_values = tile.scanlines() * n_depth;
    let mut mask = vec![0.0; n_tx * n_values];
    for tx in 0..n_tx {
        let block = &mut mask[tx * n_values..(tx + 1) * n_values];
        for (slot, it, ip) in tile.iter_scanlines() {
            for id in 0..n_depth {
                let s = grid.position(VoxelIndex::new(it, ip, id));
                block[slot * n_depth + id] = spec.transmit_weight(tx, s);
            }
        }
    }
    let fill_combine_s = time_mean(budget, || {
        for id in 0..n_depth {
            engine.fill_nappe_rx_streamed(id, &mut slab, &mut |slot, rx_row| {
                let (it, ip) = tile.scanline_at(slot);
                let vox = VoxelIndex::new(it, ip, id);
                for tx in 0..n_tx {
                    if skip_masked && mask[tx * n_values + slot * n_depth + id] == 0.0 {
                        continue;
                    }
                    engine.combine_tx_row(tx, vox, rx_row, &mut tx_row);
                }
            });
        }
        std::hint::black_box(tx_row[0]);
    });
    let mut state = TileState::new(&bf, tile);
    let total_s = time_mean(budget, || {
        bf.beamform_tile_into(&engine, &rf, &mut state);
        std::hint::black_box(state.values()[0]);
    });
    let combine_s = (fill_combine_s - fill_s).max(0.0);
    let back_end_s = (total_s - fill_combine_s).max(0.0);
    println!(
        "per-stage split on one tile ({} voxels, {N_ANGLES} transmits):",
        tile.scanlines() * n_depth
    );
    for (stage, s) in [
        ("rx-leg slab fill (once per nappe)", fill_s),
        ("per-transmit combine (xN angles)", combine_s),
        ("quantize + gather + MAC (xN)", back_end_s),
        ("total factored tile", total_s),
    ] {
        println!(
            "  {stage:<36} {:10.1} us  ({:5.1}% of total)",
            s * 1e6,
            s / total_s * 100.0
        );
    }

    // --- End to end: the 16-angle compound as warm pipeline frames. ---
    let arc_engine: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&spec));
    let mut pipe = FramePipeline::new(Beamformer::new(&spec), arc_engine, FrameRing::new(vec![rf]));
    for _ in 0..5 {
        pipe.next_volume().expect("warm-up compound frame");
    }
    let start = Instant::now();
    let mut peak = VoxelIndex::new(0, 0, 0);
    for _ in 0..FRAMES {
        let vol = pipe.next_volume().expect("warm compound frame");
        peak = vol.argmax();
    }
    let wall = start.elapsed().as_secs_f64();
    let stats = pipe.stats();
    // The steered fan on this coarse grid can pull the compound peak to
    // a neighbouring voxel — require adjacency, not exact coincidence.
    assert!(
        peak.it.abs_diff(target_vox.it) <= 1
            && peak.ip.abs_diff(target_vox.ip) <= 1
            && peak.id.abs_diff(target_vox.id) <= 1,
        "compound peak {peak} must focus next to the phantom {target_vox}"
    );
    println!(
        "pipeline: {FRAMES} warm {N_ANGLES}-angle compound frames in {wall:.3} s = {:.1} compound frames/s",
        FRAMES as f64 / wall
    );
    println!(
        "          peak at {peak} (phantom at {target_vox}), overlap fraction {:.2}, {} schedule tiles",
        stats.overlap_fraction(),
        pipe.tile_count()
    );
}
