//! Quickstart: build the paper's system, query all three delay
//! architectures, and print the headline numbers of §II.
//!
//! Run with: `cargo run --release --example quickstart`

use usbf::core::{
    DelayEngine, ExactEngine, NaiveTableEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig,
    TableSteerEngine,
};
use usbf::geometry::{ElementIndex, SystemSpec, VoxelIndex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table I, full scale — used for the storage/bandwidth arithmetic.
    let paper = SystemSpec::paper();
    println!("=== System (Table I) ===");
    println!("speed of sound        : {} m/s", paper.speed_of_sound);
    println!(
        "center frequency      : {} MHz",
        paper.transducer.center_frequency / 1e6
    );
    println!("wavelength λ          : {:.3} mm", paper.wavelength() * 1e3);
    println!(
        "transducer            : {}x{} @ λ/2 pitch",
        paper.transducer.nx, paper.transducer.ny
    );
    println!(
        "volume                : {:.0}°x{:.0}°x{:.0}λ, {}x{}x{} focal points",
        2.0 * paper.volume.theta_max.to_degrees(),
        2.0 * paper.volume.phi_max.to_degrees(),
        paper.volume.depth_max / paper.wavelength(),
        paper.volume.n_theta,
        paper.volume.n_phi,
        paper.volume.n_depth,
    );
    println!();
    println!("=== The bottleneck (§II) ===");
    println!(
        "naive delay table     : {:.1}e9 coefficients",
        paper.naive_table_entries() as f64 / 1e9
    );
    println!(
        "  as 16-bit entries   : {:.0} GB",
        NaiveTableEngine::required_bytes(&paper) as f64 / 1e9
    );
    println!(
        "delay values at 15fps : {:.2}e12 per second",
        paper.delays_per_second() / 1e12
    );
    println!(
        "echo buffer           : {} samples ({}-bit index)",
        paper.echo_buffer_len(),
        paper.echo_index_bits()
    );

    // The naive baseline refuses to build at full scale:
    let err = NaiveTableEngine::build(&paper, 8 << 30).unwrap_err();
    println!("naive build (8 GiB)   : {err}");
    println!();

    // A laptop-scale geometry for actually querying engines.
    let spec = SystemSpec::reduced();
    let exact = ExactEngine::new(&spec);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper())?;
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18())?;
    println!(
        "=== Engine comparison (reduced {}x{} probe) ===",
        spec.transducer.nx, spec.transducer.ny
    );
    println!(
        "TABLEFREE PWL         : {} segments for δ = {}",
        tablefree.segment_count(),
        tablefree.config().delta
    );
    let (ref_bits, corr_bits) = tablesteer.storage_bits();
    println!(
        "TABLESTEER tables     : {:.2} Mb reference + {:.2} Mb corrections",
        ref_bits as f64 / 1e6,
        corr_bits as f64 / 1e6
    );

    let vox = VoxelIndex::new(5, 20, 100);
    println!("\ndelays for voxel {vox} (samples):");
    println!("{:<12} {:>10} {:>8}", "element", "engine", "delay");
    for e in [
        ElementIndex::new(0, 0),
        ElementIndex::new(15, 15),
        ElementIndex::new(31, 31),
    ] {
        for eng in [&exact as &dyn DelayEngine, &tablefree, &tablesteer] {
            println!(
                "{:<12} {:>10} {:>8.2}",
                e.to_string(),
                eng.name(),
                eng.delay_samples(vox, e)
            );
        }
    }

    // The streaming view: delays are consumed one nappe slab at a time,
    // not queried per voxel — this is what the hardware architectures
    // (and the batched beamformer) actually do.
    use usbf::core::NappeDelays;
    let mut slab = NappeDelays::full(&spec);
    tablesteer.fill_nappe(vox.id, &mut slab);
    println!("\n=== Batched nappe access (fill_nappe) ===");
    println!(
        "one nappe slab        : {} scanlines x {} elements = {} delays",
        slab.scanline_count(),
        slab.n_elements(),
        slab.samples().len()
    );
    let scalar = tablesteer.delay_samples(vox, ElementIndex::new(15, 15));
    let batched = slab.at(vox.it, vox.ip, ElementIndex::new(15, 15));
    println!(
        "bit-exact vs scalar   : {} ({batched} == {scalar})",
        batched == scalar
    );
    Ok(())
}
