//! Synthetic-aperture support (§V extension): repositioned emission
//! origins need one reference table each — and off-axis origins lose the
//! quadrant fold.
//!
//! Run with: `cargo run --release --example synthetic_aperture`

use usbf::core::{DelayEngine, ExactEngine, TableSteerConfig, TableSteerEngine};
use usbf::geometry::{SystemSpec, Vec3, VoxelIndex};
use usbf::tables::{ReferenceTable, TableBudget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paper = SystemSpec::paper();
    let budget = TableBudget::for_spec(&paper, 18, 18);
    println!("=== Synthetic-aperture table cost (paper scale, 18-bit) ===");
    println!(
        "single centred origin : {:>6.1} Mb reference",
        budget.reference_megabits()
    );
    for n in [2u64, 4, 8] {
        let multi = budget.with_origins(n, true);
        println!(
            "{n} centred origins     : {:>6.1} Mb ({}x)",
            multi.reference_megabits(),
            n
        );
    }
    let off_axis = budget.with_origins(4, false);
    println!(
        "4 off-axis origins    : {:>6.1} Mb (4x origins x 4x fold loss)",
        off_axis.reference_megabits()
    );
    println!("→ \"an off-chip repository of delay tables may be needed\" (§VI-B)\n");

    // Demonstrate the fold loss concretely on a small geometry.
    let base = SystemSpec::tiny();
    let centred = ReferenceTable::build(&base);
    let displaced_spec = SystemSpec::new(
        base.speed_of_sound,
        base.sampling_frequency,
        base.transducer.clone(),
        base.volume.clone(),
        Vec3::new(2.0e-3, 0.0, 0.0), // origin displaced 2 mm along x
        base.frame_rate,
    );
    let displaced = ReferenceTable::build(&displaced_spec);
    println!("=== Fold demonstration (tiny geometry) ===");
    println!(
        "centred origin   : folded = {:>5} entries ({} unfolded)",
        centred.entry_count(),
        centred.unfolded_entry_count()
    );
    println!(
        "displaced origin : folded = {:>5} entries (fold disabled: {})",
        displaced.entry_count(),
        !displaced.is_folded()
    );

    // The displaced-origin engine still works — with its larger table.
    let eng = TableSteerEngine::new(&displaced_spec, TableSteerConfig::bits18())?;
    let exact = ExactEngine::new(&displaced_spec);
    let vox = VoxelIndex::new(4, 4, 10);
    let e = displaced_spec.elements.center_element();
    println!(
        "\ndisplaced-origin delay check at {vox}: steer = {:.2}, exact = {:.2} samples",
        eng.delay_samples(vox, e),
        exact.delay_samples(vox, e)
    );
    Ok(())
}
