//! Anechoic-cyst imaging: does TABLESTEER's steering error hurt contrast?
//!
//! A speckle phantom with an anechoic spherical void is imaged with the
//! exact and TABLESTEER engines; the cyst contrast (inside-vs-outside RMS,
//! dB) is compared. This is the kind of end-to-end check the paper's
//! "image quality will be the same … so long as delays are equally
//! accurate" argument (§II-A) calls for.
//!
//! Run with: `cargo run --release --example cyst_imaging`

use usbf::beamform::{Apodization, Beamformer};
use usbf::core::{DelayEngine, ExactEngine, TableSteerConfig, TableSteerEngine};
use usbf::geometry::{SystemSpec, Vec3, VoxelIndex};
use usbf::sim::{metrics, EchoSynthesizer, Phantom, Pulse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SystemSpec::tiny();
    // Speckle in a mid-depth slab, with a void around the central voxel.
    let center_vox = VoxelIndex::new(4, 4, 8);
    let center = spec.volume_grid.position(center_vox);
    let slab_lo = Vec3::new(-0.03, -0.03, center.z - 0.02);
    let slab_hi = Vec3::new(0.03, 0.03, center.z + 0.02);
    let radius = 8.0e-3;
    let phantom = Phantom::cyst(4000, slab_lo, slab_hi, center, radius, 20250610);
    println!(
        "cyst phantom: {} scatterers, void r = {} mm at z = {:.1} mm",
        phantom.scatterers().len(),
        radius * 1e3,
        center.z * 1e3
    );

    let rf = EchoSynthesizer::new(&spec).synthesize(&phantom, &Pulse::from_spec(&spec));
    let bf = Beamformer::new(&spec).with_apodization(Apodization::Hann);
    let exact = ExactEngine::new(&spec);
    let steer18 = TableSteerEngine::new(&spec, TableSteerConfig::bits18())?;
    let steer14 = TableSteerEngine::new(&spec, TableSteerConfig::bits14())?;

    let engines: [(&str, &dyn DelayEngine); 3] = [
        ("EXACT", &exact),
        ("TABLESTEER-18b", &steer18),
        ("TABLESTEER-14b", &steer14),
    ];
    println!(
        "\n{:<16} {:>12} {:>14}",
        "engine", "contrast", "NRMSE vs exact"
    );
    let mut exact_volume = None;
    for (label, eng) in engines {
        let vol = bf.beamform_volume(eng, &rf);
        // Voxels inside/outside the void at the cyst depth slab.
        let mut inside = Vec::new();
        let mut outside = Vec::new();
        for it in 0..spec.volume.n_theta {
            for ip in 0..spec.volume.n_phi {
                for id in 6..=10 {
                    let vox = VoxelIndex::new(it, ip, id);
                    let p = spec.volume_grid.position(vox);
                    let v = vol.get(vox);
                    if p.distance(center) < radius * 0.7 {
                        inside.push(v);
                    } else if p.distance(center) > radius * 1.3 {
                        outside.push(v);
                    }
                }
            }
        }
        let contrast = metrics::contrast_db(&inside, &outside);
        let nrmse = match &exact_volume {
            None => {
                exact_volume = Some(vol.clone());
                0.0
            }
            Some(ev) => metrics::nrmse(ev.as_slice(), vol.as_slice()),
        };
        println!("{:<16} {:>9.1} dB {:>14.4}", label, contrast, nrmse);
    }
    println!("\n(more negative contrast = darker void = better: the 18-bit design");
    println!(" tracks the exact image closely, while the aggressive 14-bit");
    println!(" quantization visibly fills the void — the Table II accuracy/area");
    println!(" tradeoff made visible in an image)");
    Ok(())
}
